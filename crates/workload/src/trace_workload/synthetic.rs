//! Seeded synthetic trace generation.
//!
//! `synthetic:key=value,...` describes a reproducible job log without a
//! file: node counts are log-uniform over powers of two (mass spread
//! across orders of magnitude, like production mixes), walltimes are
//! Pareto-tailed with a cap (most jobs short, a heavy tail of long ones),
//! arrivals are Poisson, and project labels are quadratically biased so a
//! few projects dominate — the shape Graziani, Lusch & Messer report for
//! the Frontier CY2024 log. Generation is a [`JobSource`]: records are
//! produced one at a time, so even a 300k-job synthetic trace never
//! materializes.

use super::{JobSource, TraceError, TraceJob};
use coopckpt_des::{Duration, Time};
use coopckpt_failure::Xoshiro256pp;
use coopckpt_model::Bytes;

/// Pareto shape for walltimes: finite mean, heavy tail.
const WALLTIME_ALPHA: f64 = 1.5;

/// Parameters of the synthetic trace grammar, all spellable as
/// `synthetic:jobs=N,seed=S,...` (unspecified keys take the defaults
/// shown on each field).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Number of jobs to emit (`jobs`, default 1000).
    pub jobs: usize,
    /// RNG seed (`seed`, default 1). Same spec ⇒ same trace, always.
    pub seed: u64,
    /// Distinct project labels `p0..p<n>` (`projects`, default 8).
    pub projects: usize,
    /// Largest node count; drawn log-uniform over the powers of two up to
    /// this, so it is rounded down to one (`max_nodes`, default 4096).
    pub max_nodes: usize,
    /// Mean walltime in hours before the cap (`mean_walltime_hours`,
    /// default 4).
    pub mean_walltime_hours: f64,
    /// Walltime cap in hours, like a center queue limit
    /// (`max_walltime_hours`, default 24).
    pub max_walltime_hours: f64,
    /// Mean interarrival gap in seconds (`mean_interarrival_secs`,
    /// default 600).
    pub mean_interarrival_secs: f64,
    /// Node memory assumed for checkpoint sizing, GB
    /// (`gb_per_node`, default 128).
    pub gb_per_node: f64,
    /// Fraction of node memory each checkpoint writes
    /// (`ckpt_frac`, default 0.5).
    pub ckpt_frac: f64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            jobs: 1000,
            seed: 1,
            projects: 8,
            max_nodes: 4096,
            mean_walltime_hours: 4.0,
            max_walltime_hours: 24.0,
            mean_interarrival_secs: 600.0,
            gb_per_node: 128.0,
            ckpt_frac: 0.5,
        }
    }
}

impl SyntheticSpec {
    /// Parses the comma-separated `key=value` grammar (the part after
    /// `synthetic:`). `context` names the full spec in error messages.
    pub fn parse(grammar: &str, context: &str) -> Result<SyntheticSpec, TraceError> {
        let mut spec = SyntheticSpec::default();
        let err = |msg: String| TraceError::new(context, 0, msg);
        for part in grammar.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got '{part}'")))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_usize = || -> Result<usize, TraceError> {
                value
                    .parse()
                    .map_err(|_| err(format!("bad value '{value}' for '{key}'")))
            };
            let parse_f64 = || -> Result<f64, TraceError> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| err(format!("bad value '{value}' for '{key}'")))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(err(format!("'{key}' must be positive, got '{value}'")));
                }
                Ok(v)
            };
            match key {
                "jobs" => spec.jobs = parse_usize()?,
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|_| err(format!("bad value '{value}' for 'seed'")))?
                }
                "projects" => spec.projects = parse_usize()?,
                "max_nodes" => spec.max_nodes = parse_usize()?,
                "mean_walltime_hours" => spec.mean_walltime_hours = parse_f64()?,
                "max_walltime_hours" => spec.max_walltime_hours = parse_f64()?,
                "mean_interarrival_secs" => spec.mean_interarrival_secs = parse_f64()?,
                "gb_per_node" => spec.gb_per_node = parse_f64()?,
                "ckpt_frac" => spec.ckpt_frac = parse_f64()?,
                other => {
                    return Err(err(format!(
                        "unknown synthetic key '{other}' (expected jobs, seed, projects, \
                         max_nodes, mean_walltime_hours, max_walltime_hours, \
                         mean_interarrival_secs, gb_per_node, ckpt_frac)"
                    )))
                }
            }
        }
        if spec.jobs == 0 {
            return Err(err("'jobs' must be at least 1".to_string()));
        }
        if spec.projects == 0 {
            return Err(err("'projects' must be at least 1".to_string()));
        }
        if spec.max_nodes == 0 {
            return Err(err("'max_nodes' must be at least 1".to_string()));
        }
        if spec.max_walltime_hours < spec.mean_walltime_hours {
            return Err(err(format!(
                "'max_walltime_hours' ({}) must be at least 'mean_walltime_hours' ({})",
                spec.max_walltime_hours, spec.mean_walltime_hours
            )));
        }
        Ok(spec)
    }

    /// The canonical `synthetic:...` string with every field explicit, so
    /// specs that differ only in spelled-out defaults compare equal after
    /// a round trip.
    pub fn spec_string(&self) -> String {
        format!(
            "synthetic:jobs={},seed={},projects={},max_nodes={},mean_walltime_hours={},\
             max_walltime_hours={},mean_interarrival_secs={},gb_per_node={},ckpt_frac={}",
            self.jobs,
            self.seed,
            self.projects,
            self.max_nodes,
            self.mean_walltime_hours,
            self.max_walltime_hours,
            self.mean_interarrival_secs,
            self.gb_per_node,
            self.ckpt_frac
        )
    }
}

/// The generator itself: a [`JobSource`] emitting `spec.jobs` records.
pub struct SyntheticSource {
    spec: SyntheticSpec,
    rng: Xoshiro256pp,
    emitted: usize,
    clock_secs: f64,
    /// log₂ of the largest emittable node count.
    exponents: u32,
}

impl SyntheticSource {
    /// A fresh source at the start of the trace described by `spec`.
    pub fn new(spec: SyntheticSpec) -> Self {
        let rng = Xoshiro256pp::seed_from_u64(spec.seed);
        let exponents = (spec.max_nodes as f64).log2().floor() as u32;
        SyntheticSource {
            spec,
            rng,
            emitted: 0,
            clock_secs: 0.0,
            exponents,
        }
    }
}

impl JobSource for SyntheticSource {
    fn next_job(&mut self) -> Option<Result<TraceJob, TraceError>> {
        if self.emitted == self.spec.jobs {
            return None;
        }
        self.emitted += 1;
        // Fixed draw order — part of the trace's identity: arrival gap,
        // node exponent, walltime, project.
        let u = self.rng.next_f64_open();
        self.clock_secs += -self.spec.mean_interarrival_secs * u.ln();
        let nodes = 1usize << self.rng.next_bounded(u64::from(self.exponents) + 1);
        let mean = self.spec.mean_walltime_hours * 3600.0;
        let x_min = mean * (WALLTIME_ALPHA - 1.0) / WALLTIME_ALPHA;
        let u = self.rng.next_f64_open();
        let walltime_secs =
            (x_min / u.powf(1.0 / WALLTIME_ALPHA)).min(self.spec.max_walltime_hours * 3600.0);
        let u = self.rng.next_f64();
        let project_idx =
            ((u * u * self.spec.projects as f64) as usize).min(self.spec.projects - 1);
        let ckpt = Bytes::from_gb(nodes as f64 * self.spec.gb_per_node * self.spec.ckpt_frac);
        Some(Ok(TraceJob {
            project: format!("p{project_idx}"),
            submit: Time::from_secs(self.clock_secs),
            nodes,
            walltime: Duration::from_secs(walltime_secs),
            ckpt_bytes: Some(ckpt),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(spec: SyntheticSpec) -> Vec<TraceJob> {
        let mut src = SyntheticSource::new(spec);
        let mut out = Vec::new();
        while let Some(j) = src.next_job() {
            out.push(j.unwrap());
        }
        out
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticSpec::parse("jobs=200,seed=42", "test").unwrap();
        let a = drain(spec.clone());
        let b = drain(spec);
        assert_eq!(a, b);
        let other = SyntheticSpec::parse("jobs=200,seed=43", "test").unwrap();
        assert_ne!(a, drain(other));
    }

    #[test]
    fn jobs_are_ordered_bounded_and_labelled() {
        let spec =
            SyntheticSpec::parse("jobs=500,seed=7,projects=3,max_nodes=256", "test").unwrap();
        let jobs = drain(spec.clone());
        assert_eq!(jobs.len(), 500);
        let mut last = Time::ZERO;
        for j in &jobs {
            assert!(j.submit >= last);
            last = j.submit;
            assert!(j.nodes >= 1 && j.nodes <= 256);
            assert!(j.nodes.is_power_of_two());
            assert!(j.walltime.is_positive());
            assert!(j.walltime.as_hours() <= spec.max_walltime_hours + 1e-9);
            assert!(j.project.starts_with('p'));
            let idx: usize = j.project[1..].parse().unwrap();
            assert!(idx < 3);
            assert!(j.ckpt_bytes.unwrap().as_gb() > 0.0);
        }
        // Heavy node tail: both extremes of the power-of-two ladder appear.
        assert!(jobs.iter().any(|j| j.nodes == 1));
        assert!(jobs.iter().any(|j| j.nodes == 256));
        // The quadratic project bias front-loads p0.
        let p0 = jobs.iter().filter(|j| j.project == "p0").count();
        assert!(p0 > 500 / 3, "p0 got {p0} of 500");
    }

    #[test]
    fn grammar_rejects_unknown_and_invalid_keys() {
        assert!(SyntheticSpec::parse("bogus=1", "test").is_err());
        assert!(SyntheticSpec::parse("jobs=0", "test").is_err());
        assert!(SyntheticSpec::parse("jobs", "test").is_err());
        assert!(SyntheticSpec::parse("mean_walltime_hours=-2", "test").is_err());
        assert!(SyntheticSpec::parse("mean_walltime_hours=30", "test").is_err());
        let spec = SyntheticSpec::parse("", "test").unwrap();
        assert_eq!(spec, SyntheticSpec::default());
    }

    #[test]
    fn spec_string_round_trips() {
        let spec = SyntheticSpec::parse("jobs=77,seed=5,ckpt_frac=0.25", "test").unwrap();
        let canon = spec.spec_string();
        let grammar = canon.strip_prefix("synthetic:").unwrap();
        assert_eq!(SyntheticSpec::parse(grammar, "test").unwrap(), spec);
    }
}
