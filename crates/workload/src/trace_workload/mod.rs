//! Trace-driven workloads: streaming job-log ingestion.
//!
//! The APEX generator in [`crate::generator`] samples a synthetic job mix
//! from class shares; this module instead *replays a job log* — either a
//! real one (the Frontier CY2024 analysis of Graziani, Lusch & Messer
//! covers 331,640 production jobs) or a seeded synthetic one — feeding the
//! engine lazily through the [`JobSource`] trait so a 300k-job trace runs
//! in bounded memory.
//!
//! The pieces:
//!
//! * [`TraceJob`] — one log record: `project, submit_time, nodes,
//!   walltime[, ckpt_bytes]`.
//! * [`JobSource`] — the pull seam: `next_job()` yields records in
//!   nondecreasing submit order, one at a time.
//! * [`TraceReader`] — streaming CSV / JSON-lines file reader.
//! * [`SyntheticSpec`] / [`SyntheticSource`] — the seeded generator
//!   (`synthetic:jobs=1000,seed=7,...` grammar) so tests, benches, and CI
//!   need no external file.
//! * [`TraceClasses`] — a bounded-memory validation scan that synthesizes
//!   one [`AppClass`] per distinct job *shape* (`q_nodes`, checkpoint
//!   size); the engine's per-class machinery (Least-Waste statistics,
//!   theory bounds) then works unchanged on trace jobs.
//! * [`JobStream`] — the run-time adapter handed to the engine: pulls one
//!   record ahead, maps it onto its shape class, and emits a
//!   [`SubmittedJob`] carrying the submit time and project label.
//!
//! The scan and the stream apply identical validation and identical
//! checkpoint-size defaulting (a missing `ckpt_bytes` means the job's full
//! memory footprint, `q_nodes × mem_per_node`), so every streamed job maps
//! onto a scanned shape bit-exactly.

mod reader;
mod synthetic;

pub use reader::TraceReader;
pub use synthetic::{SyntheticSource, SyntheticSpec};

use coopckpt_des::{Duration, Time};
use coopckpt_model::{AppClass, Bytes, ClassId, JobId, JobSpec, Platform};
use std::collections::HashMap;

/// One record of a job log.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceJob {
    /// Project (allocation) label the job charges to.
    pub project: String,
    /// Submission time, seconds from trace start.
    pub submit: Time,
    /// Nodes requested.
    pub nodes: usize,
    /// Requested walltime — interpreted as the job's work duration.
    pub walltime: Duration,
    /// Checkpoint volume; `None` defaults to the job's full memory
    /// footprint on the target platform.
    pub ckpt_bytes: Option<Bytes>,
}

/// A trace problem: what went wrong, where.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// The trace spec or file path the error came from.
    pub context: String,
    /// 1-based line number, or 0 for whole-source errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TraceError {
    pub(crate) fn new(context: &str, line: usize, message: impl Into<String>) -> Self {
        TraceError {
            context: context.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.context, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.context, self.message)
        }
    }
}

impl std::error::Error for TraceError {}

/// A pull-based stream of job records in nondecreasing submit order.
///
/// Implementations must yield records one at a time without materializing
/// the remainder — the engine draws submissions as simulated time advances,
/// which is what keeps a 300k-job trace in bounded memory.
pub trait JobSource {
    /// The next record, `None` when the source is exhausted. After an
    /// error or `None` the source need not yield anything further.
    fn next_job(&mut self) -> Option<Result<TraceJob, TraceError>>;
}

/// An in-memory [`JobSource`] over a pre-built record list.
///
/// The test double for streaming readers: slurp a reader eagerly, then
/// replay it through the same engine path to check bit-identity, or build
/// records by hand for unit tests. Records must already be in
/// nondecreasing submit order.
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    jobs: std::collections::VecDeque<TraceJob>,
}

impl MaterializedSource {
    /// Wraps an explicit record list.
    pub fn new(jobs: Vec<TraceJob>) -> Self {
        MaterializedSource { jobs: jobs.into() }
    }

    /// Drains `source` eagerly into memory.
    pub fn slurp(source: &mut dyn JobSource) -> Result<Self, TraceError> {
        let mut jobs = Vec::new();
        while let Some(job) = source.next_job() {
            jobs.push(job?);
        }
        Ok(MaterializedSource::new(jobs))
    }

    /// Records left to yield.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when fully drained.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

impl JobSource for MaterializedSource {
    fn next_job(&mut self) -> Option<Result<TraceJob, TraceError>> {
        self.jobs.pop_front().map(Ok)
    }
}

/// Where a trace workload comes from: a log file or the synthetic grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSpec {
    /// A CSV or JSON-lines job log on disk.
    Path(String),
    /// The seeded synthetic generator.
    Synthetic(SyntheticSpec),
}

impl TraceSpec {
    /// Parses a workload spec string: `synthetic:<grammar>` or a file path.
    pub fn parse(s: &str) -> Result<TraceSpec, TraceError> {
        if let Some(rest) = s.strip_prefix("synthetic:") {
            SyntheticSpec::parse(rest, s).map(TraceSpec::Synthetic)
        } else if s.is_empty() {
            Err(TraceError::new(
                s,
                0,
                "empty workload trace spec (expected a file path or synthetic:...)",
            ))
        } else {
            Ok(TraceSpec::Path(s.to_string()))
        }
    }

    /// The canonical spec string, the inverse of [`parse`](Self::parse).
    /// Synthetic specs render every field explicitly, so two specs that
    /// differ only in spelled-out defaults canonicalize identically.
    pub fn spec_string(&self) -> String {
        match self {
            TraceSpec::Path(p) => p.clone(),
            TraceSpec::Synthetic(s) => s.spec_string(),
        }
    }

    /// Opens a fresh source positioned at the first record. Sources are
    /// cheap to reopen: the validation scan and the simulation run each
    /// take their own pass.
    pub fn open(&self) -> Result<Box<dyn JobSource>, TraceError> {
        match self {
            TraceSpec::Path(p) => Ok(Box::new(TraceReader::open(p)?)),
            TraceSpec::Synthetic(s) => Ok(Box::new(SyntheticSource::new(s.clone()))),
        }
    }
}

/// A job shape: node count plus exact checkpoint volume (bit pattern, so
/// shape identity is exact rather than tolerance-based).
type ShapeKey = (usize, u64);

fn shape_key(nodes: usize, ckpt: Bytes) -> ShapeKey {
    (nodes, ckpt.as_bytes().to_bits())
}

/// The checkpoint volume a record actually uses: explicit when given,
/// otherwise the job's full memory footprint on `platform`. Scan and
/// stream share this, so shapes always match.
fn effective_ckpt(job: &TraceJob, platform: &Platform) -> Bytes {
    job.ckpt_bytes
        .unwrap_or(platform.mem_per_node * job.nodes as f64)
}

/// Per-shape accumulator used during the scan.
struct ShapeStats {
    nodes: usize,
    ckpt: Bytes,
    count: usize,
    wall_sum_secs: f64,
    node_secs: f64,
}

/// The class table synthesized from one validation pass over a trace.
///
/// Memory is bounded by the number of *distinct shapes* and *distinct
/// projects*, not by the number of jobs — the pass itself streams.
#[derive(Debug, Clone)]
pub struct TraceClasses {
    /// One class per distinct shape, in first-seen order. Walltime is the
    /// shape's mean; `resource_share` is its node-seconds share; I/O
    /// volumes other than the checkpoint are zero (job logs don't record
    /// them).
    pub classes: Vec<AppClass>,
    /// Jobs within the horizon.
    pub jobs: usize,
    /// Distinct project labels within the horizon.
    pub projects: usize,
    /// Submit time of the last job within the horizon.
    pub last_submit: Time,
    shape_ids: HashMap<ShapeKey, usize>,
}

impl TraceClasses {
    /// Streams `source` once, validating every record against `platform`
    /// and collecting shapes. Records submitted after `horizon` are
    /// ignored (the engine never admits them either).
    pub fn scan(
        source: &mut dyn JobSource,
        platform: &Platform,
        horizon: Time,
        context: &str,
    ) -> Result<TraceClasses, TraceError> {
        let mut shapes: Vec<ShapeStats> = Vec::new();
        let mut shape_ids: HashMap<ShapeKey, usize> = HashMap::new();
        let mut projects: HashMap<String, ()> = HashMap::new();
        let mut jobs = 0usize;
        let mut last_submit = Time::ZERO;
        while let Some(record) = source.next_job() {
            let job = record?;
            let line = jobs + 1;
            if !(job.submit.is_finite() && job.submit >= Time::ZERO) {
                return Err(TraceError::new(
                    context,
                    line,
                    format!(
                        "submit time must be finite and non-negative, got {}",
                        job.submit
                    ),
                ));
            }
            if job.submit < last_submit {
                return Err(TraceError::new(
                    context,
                    line,
                    format!(
                        "records must be in nondecreasing submit order \
                         ({} after {last_submit})",
                        job.submit
                    ),
                ));
            }
            if job.submit > horizon {
                break;
            }
            if job.nodes == 0 {
                return Err(TraceError::new(context, line, "job requests zero nodes"));
            }
            if job.nodes > platform.nodes {
                return Err(TraceError::new(
                    context,
                    line,
                    format!(
                        "job requests {} nodes but {} has only {}",
                        job.nodes, platform.name, platform.nodes
                    ),
                ));
            }
            if !(job.walltime.is_finite() && job.walltime.is_positive()) {
                return Err(TraceError::new(
                    context,
                    line,
                    format!("walltime must be positive, got {}", job.walltime),
                ));
            }
            let ckpt = effective_ckpt(&job, platform);
            if !ckpt.is_valid() || ckpt.is_zero() {
                return Err(TraceError::new(
                    context,
                    line,
                    "ckpt_bytes must be positive (omit it to default to the \
                     job's memory footprint)",
                ));
            }
            last_submit = job.submit;
            jobs += 1;
            projects.entry(job.project.clone()).or_insert(());
            let key = shape_key(job.nodes, ckpt);
            let idx = *shape_ids.entry(key).or_insert_with(|| {
                shapes.push(ShapeStats {
                    nodes: job.nodes,
                    ckpt,
                    count: 0,
                    wall_sum_secs: 0.0,
                    node_secs: 0.0,
                });
                shapes.len() - 1
            });
            shapes[idx].count += 1;
            shapes[idx].wall_sum_secs += job.walltime.as_secs();
            shapes[idx].node_secs += job.nodes as f64 * job.walltime.as_secs();
        }
        if jobs == 0 {
            return Err(TraceError::new(
                context,
                0,
                format!("trace contains no jobs within the {horizon} horizon"),
            ));
        }
        let total_node_secs: f64 = shapes.iter().map(|s| s.node_secs).sum();
        // Shape names: "q<nodes>", disambiguated by checkpoint-size ordinal
        // when one node count carries several checkpoint volumes.
        let mut per_nodes: HashMap<usize, usize> = HashMap::new();
        for s in &shapes {
            *per_nodes.entry(s.nodes).or_insert(0) += 1;
        }
        let mut ordinal: HashMap<usize, usize> = HashMap::new();
        let classes = shapes
            .iter()
            .map(|s| {
                let name = if per_nodes[&s.nodes] > 1 {
                    let n = ordinal.entry(s.nodes).or_insert(0);
                    *n += 1;
                    format!("q{}.{}", s.nodes, n)
                } else {
                    format!("q{}", s.nodes)
                };
                AppClass {
                    name,
                    q_nodes: s.nodes,
                    walltime: Duration::from_secs(s.wall_sum_secs / s.count as f64),
                    resource_share: s.node_secs / total_node_secs,
                    input_bytes: Bytes::ZERO,
                    output_bytes: Bytes::ZERO,
                    ckpt_bytes: s.ckpt,
                    regular_io_bytes: Bytes::ZERO,
                }
            })
            .collect();
        Ok(TraceClasses {
            classes,
            jobs,
            projects: projects.len(),
            last_submit,
            shape_ids,
        })
    }

    /// Rebuilds the shape table from an already-synthesized class list
    /// (each class *is* one shape: its `q_nodes` and `ckpt_bytes` key it).
    /// Lets a run reconstruct the [`JobStream`] mapping from a stored
    /// config without a second scan pass; the job/project counters are
    /// not recoverable from classes alone and read zero.
    pub fn from_classes(classes: &[AppClass]) -> TraceClasses {
        let shape_ids = classes
            .iter()
            .enumerate()
            .map(|(idx, c)| (shape_key(c.q_nodes, c.ckpt_bytes), idx))
            .collect();
        TraceClasses {
            classes: classes.to_vec(),
            jobs: 0,
            projects: 0,
            last_submit: Time::ZERO,
            shape_ids,
        }
    }

    /// Convenience: open `spec` and scan it.
    pub fn scan_spec(
        spec: &TraceSpec,
        platform: &Platform,
        horizon: Time,
    ) -> Result<TraceClasses, TraceError> {
        let mut source = spec.open()?;
        TraceClasses::scan(source.as_mut(), platform, horizon, &spec.spec_string())
    }

    /// The class for a job shape, when the scan saw it.
    pub fn class_of(&self, nodes: usize, ckpt: Bytes) -> Option<ClassId> {
        self.shape_ids
            .get(&shape_key(nodes, ckpt))
            .map(|&i| ClassId(i))
    }
}

/// One job arrival handed to the engine: when, what, and whose.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmittedJob {
    /// Simulated submit time.
    pub submit: Time,
    /// Project (allocation) label, for per-project accounting.
    pub project: String,
    /// The job itself. The id is a stream-local rank; the engine assigns
    /// its own id space on admission (restarts share the same counter).
    pub spec: JobSpec,
}

/// The run-time adapter the engine pulls from: one record of lookahead,
/// each mapped onto its scanned shape class.
pub struct JobStream {
    source: Box<dyn JobSource>,
    context: String,
    mem_per_node: Bytes,
    shape_ids: HashMap<ShapeKey, usize>,
    horizon: Time,
    rank: usize,
    done: bool,
}

impl JobStream {
    /// Opens a fresh stream over `spec` against the class table a prior
    /// [`TraceClasses::scan_spec`] built (same platform, same horizon).
    pub fn open(
        spec: &TraceSpec,
        classes: &TraceClasses,
        platform: &Platform,
        horizon: Time,
    ) -> Result<JobStream, TraceError> {
        Ok(JobStream {
            source: spec.open()?,
            context: spec.spec_string(),
            mem_per_node: platform.mem_per_node,
            shape_ids: classes.shape_ids.clone(),
            horizon,
            rank: 0,
            done: false,
        })
    }

    /// Builds a stream over an already-open source (test seam — lets the
    /// bit-identity tests drive a [`MaterializedSource`] and a file reader
    /// through the identical path).
    pub fn over(
        source: Box<dyn JobSource>,
        classes: &TraceClasses,
        platform: &Platform,
        horizon: Time,
        context: &str,
    ) -> JobStream {
        JobStream {
            source,
            context: context.to_string(),
            mem_per_node: platform.mem_per_node,
            shape_ids: classes.shape_ids.clone(),
            horizon,
            rank: 0,
            done: false,
        }
    }

    /// The next arrival in submit order, `None` once the source is
    /// exhausted or past the horizon.
    ///
    /// # Panics
    ///
    /// Panics when the source yields an error or an unscanned shape — the
    /// validation scan accepted this spec, so either means the trace
    /// changed between validation and the run.
    pub fn next_submission(&mut self) -> Option<SubmittedJob> {
        if self.done {
            return None;
        }
        let job = match self.source.next_job()? {
            Ok(job) => job,
            Err(e) => panic!("trace changed since validation: {e}"),
        };
        if job.submit > self.horizon {
            self.done = true;
            return None;
        }
        let ckpt = job
            .ckpt_bytes
            .unwrap_or(self.mem_per_node * job.nodes as f64);
        let &class = self
            .shape_ids
            .get(&shape_key(job.nodes, ckpt))
            .unwrap_or_else(|| {
                panic!(
                    "trace changed since validation: {}: unscanned job shape \
                     ({} nodes, {} checkpoint)",
                    self.context, job.nodes, ckpt
                )
            });
        let rank = self.rank;
        self.rank += 1;
        Some(SubmittedJob {
            submit: job.submit,
            project: job.project,
            spec: JobSpec {
                id: JobId(rank),
                class: ClassId(class),
                q_nodes: job.nodes,
                work: job.walltime,
                input_bytes: Bytes::ZERO,
                output_bytes: Bytes::ZERO,
                ckpt_bytes: ckpt,
                regular_io_bytes: Bytes::ZERO,
                priority: rank as i64,
                is_restart: false,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::cielo;

    fn job(project: &str, submit: f64, nodes: usize, wall: f64) -> TraceJob {
        TraceJob {
            project: project.to_string(),
            submit: Time::from_secs(submit),
            nodes,
            walltime: Duration::from_secs(wall),
            ckpt_bytes: None,
        }
    }

    #[test]
    fn scan_groups_jobs_into_shape_classes() {
        let p = cielo();
        let mut src = MaterializedSource::new(vec![
            job("astro", 0.0, 128, 3600.0),
            job("bio", 10.0, 256, 7200.0),
            job("astro", 20.0, 128, 1800.0),
        ]);
        let t = TraceClasses::scan(&mut src, &p, Time::from_secs(1e6), "test").unwrap();
        assert_eq!(t.jobs, 3);
        assert_eq!(t.projects, 2);
        assert_eq!(t.classes.len(), 2);
        assert_eq!(t.classes[0].name, "q128");
        assert_eq!(t.classes[0].q_nodes, 128);
        // Mean walltime of the two q128 jobs.
        assert_eq!(t.classes[0].walltime.as_secs(), (3600.0 + 1800.0) / 2.0);
        // Default checkpoint = full footprint.
        assert_eq!(
            t.classes[0].ckpt_bytes.as_bytes(),
            (p.mem_per_node * 128.0).as_bytes()
        );
        // Shares sum to 1 over node-seconds.
        let share: f64 = t.classes.iter().map(|c| c.resource_share).sum();
        assert!((share - 1.0).abs() < 1e-12);
        assert!(t.class_of(128, p.mem_per_node * 128.0).is_some());
        assert!(t.class_of(64, p.mem_per_node * 64.0).is_none());
    }

    #[test]
    fn same_nodes_different_ckpt_are_distinct_shapes() {
        let p = cielo();
        let mut a = job("x", 0.0, 128, 100.0);
        a.ckpt_bytes = Some(Bytes::from_gb(10.0));
        let mut b = job("x", 1.0, 128, 100.0);
        b.ckpt_bytes = Some(Bytes::from_gb(20.0));
        let mut src = MaterializedSource::new(vec![a, b]);
        let t = TraceClasses::scan(&mut src, &p, Time::from_secs(1e6), "test").unwrap();
        assert_eq!(t.classes.len(), 2);
        assert_eq!(t.classes[0].name, "q128.1");
        assert_eq!(t.classes[1].name, "q128.2");
    }

    #[test]
    fn scan_rejects_out_of_order_and_oversized() {
        let p = cielo();
        let mut src = MaterializedSource::new(vec![job("x", 10.0, 1, 1.0), job("x", 5.0, 1, 1.0)]);
        let err = TraceClasses::scan(&mut src, &p, Time::from_secs(1e6), "test").unwrap_err();
        assert!(err.message.contains("nondecreasing"), "{err}");
        let mut src = MaterializedSource::new(vec![job("x", 0.0, p.nodes + 1, 1.0)]);
        let err = TraceClasses::scan(&mut src, &p, Time::from_secs(1e6), "test").unwrap_err();
        assert!(err.message.contains("only"), "{err}");
    }

    #[test]
    fn scan_stops_at_the_horizon() {
        let p = cielo();
        let mut src = MaterializedSource::new(vec![
            job("x", 0.0, 1, 1.0),
            job("x", 100.0, 2, 1.0),
            job("x", 1e9, 4, 1.0),
        ]);
        let t = TraceClasses::scan(&mut src, &p, Time::from_secs(200.0), "test").unwrap();
        assert_eq!(t.jobs, 2);
        assert_eq!(t.classes.len(), 2);
        assert_eq!(t.last_submit, Time::from_secs(100.0));
    }

    #[test]
    fn stream_maps_jobs_onto_scanned_shapes() {
        let p = cielo();
        let records = vec![
            job("astro", 0.0, 128, 3600.0),
            job("bio", 10.0, 256, 7200.0),
        ];
        let mut src = MaterializedSource::new(records.clone());
        let horizon = Time::from_secs(1e6);
        let t = TraceClasses::scan(&mut src, &p, horizon, "test").unwrap();
        let mut stream = JobStream::over(
            Box::new(MaterializedSource::new(records)),
            &t,
            &p,
            horizon,
            "test",
        );
        let first = stream.next_submission().unwrap();
        assert_eq!(first.project, "astro");
        assert_eq!(first.spec.q_nodes, 128);
        assert_eq!(
            first.spec.class,
            t.class_of(128, p.mem_per_node * 128.0).unwrap()
        );
        assert_eq!(first.spec.work.as_secs(), 3600.0);
        let second = stream.next_submission().unwrap();
        assert_eq!(second.project, "bio");
        assert_eq!(second.spec.priority, 1);
        assert!(stream.next_submission().is_none());
    }

    #[test]
    fn trace_spec_parse_round_trips() {
        let p = TraceSpec::parse("scenarios/traces/sample.csv").unwrap();
        assert_eq!(p.spec_string(), "scenarios/traces/sample.csv");
        let s = TraceSpec::parse("synthetic:jobs=10,seed=3").unwrap();
        let canon = s.spec_string();
        assert!(canon.starts_with("synthetic:jobs=10,"), "{canon}");
        // Canonical strings are fixed points of parse ∘ spec_string.
        assert_eq!(TraceSpec::parse(&canon).unwrap().spec_string(), canon);
        assert!(TraceSpec::parse("").is_err());
        assert!(TraceSpec::parse("synthetic:bogus=1").is_err());
    }
}
