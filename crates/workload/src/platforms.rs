//! Platform presets used in the paper's evaluation.

use coopckpt_des::Duration;
use coopckpt_model::{Bandwidth, Bytes, Platform};

/// Cores per node assumed when mapping Cielo's published core count onto
/// failure units. The paper's MTBF anchors ("2-year node MTBF ⇒ ≈1 h system
/// MTBF"; "50-year ⇒ ≈24 h") imply ≈17,500–18,250 failing units, i.e. the
/// 143,104 cores grouped 8 per unit.
pub const CIELO_CORES_PER_NODE: usize = 8;

/// Cielo: a 1.37 PF capability system at LANL (2010–2016); 143,104 cores,
/// 286 TB of memory, up to 160 GB/s of PFS bandwidth (paper Section 6.1).
///
/// Node MTBF defaults to 2 years (the paper's Figure 1 setting); sweeps use
/// [`Platform::with_node_mtbf`] and [`Platform::with_bandwidth`].
pub fn cielo() -> Platform {
    Platform::new(
        "Cielo",
        143_104 / CIELO_CORES_PER_NODE, // 17,888 nodes
        CIELO_CORES_PER_NODE,
        Bytes::from_tb(286.0) / (143_104.0 / CIELO_CORES_PER_NODE as f64),
        Bandwidth::from_gbps(160.0),
        Duration::from_years(2.0),
    )
    .expect("Cielo preset must be valid")
}

/// The prospective future system of Section 6.2: 50,000 compute nodes and
/// 7 PB of main memory (e.g. Aurora-class). Bandwidth and MTBF are the
/// swept quantities in Figure 3; the defaults here (10 TB/s, 15-year node
/// MTBF) sit mid-range of that sweep.
pub fn prospective() -> Platform {
    Platform::new(
        "Prospective",
        50_000,
        64,
        Bytes::from_pb(7.0) / 50_000.0,
        Bandwidth::from_tbps(10.0),
        Duration::from_years(15.0),
    )
    .expect("prospective preset must be valid")
}

/// The Exascale parameter preset of the comd-ft progress-rate study:
/// 12,655 nodes with 2,432 GB of memory each (≈30 PB total) behind a
/// 10 TB/s burst-capable file system, 1-year node MTBF — the operating
/// point of the `ckpt-mem-fraction` sweep, where the checkpointed
/// fraction of node memory is the swept quantity.
pub fn exascale() -> Platform {
    Platform::new(
        "Exascale",
        12_655,
        64,
        Bytes::from_gb(2432.0),
        Bandwidth::from_tbps(10.0),
        Duration::from_years(1.0),
    )
    .expect("Exascale preset must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cielo_totals_match_published_figures() {
        let p = cielo();
        assert_eq!(p.nodes, 17_888);
        assert_eq!(p.total_cores(), 143_104);
        assert!((p.total_memory().as_tb() - 286.0).abs() < 1e-6);
        assert_eq!(p.pfs_bandwidth, Bandwidth::from_gbps(160.0));
    }

    #[test]
    fn cielo_system_mtbf_anchors() {
        // 2-year node MTBF → ≈1 h system MTBF (paper Fig. 1 caption).
        let p = cielo();
        let hours = p.system_mtbf().as_hours();
        assert!(
            (hours - 1.0).abs() < 0.05,
            "system MTBF at 2-year nodes: {hours} h"
        );
        // 50-year node MTBF → ≈24 h system MTBF (paper Fig. 2 x-axis).
        let p = p.with_node_mtbf(Duration::from_years(50.0));
        let hours = p.system_mtbf().as_hours();
        assert!(
            (hours - 24.0).abs() < 0.6,
            "system MTBF at 50-year nodes: {hours} h"
        );
    }

    #[test]
    fn exascale_totals() {
        let p = exascale();
        assert_eq!(p.nodes, 12_655);
        // ≈30 PB of aggregate memory.
        assert!((p.total_memory().as_tb() - 12_655.0 * 2.432).abs() < 1e-6);
        assert_eq!(p.pfs_bandwidth, Bandwidth::from_tbps(10.0));
        // A full-memory checkpoint of the whole machine at peak bandwidth
        // takes ~51 minutes — the sweep's f = 1 endpoint.
        let full = p.total_memory().transfer_time(p.pfs_bandwidth);
        assert!(
            full.as_secs() > 2900.0 && full.as_secs() < 3300.0,
            "full-memory commit {full}"
        );
    }

    #[test]
    fn prospective_totals() {
        let p = prospective();
        assert_eq!(p.nodes, 50_000);
        assert!((p.total_memory().as_tb() - 7000.0).abs() < 1e-6);
        // Memory ratio to Cielo ≈ 24.5×: the paper's problem-size scaling.
        let ratio = p.total_memory() / cielo().total_memory();
        assert!((ratio - 7000.0 / 286.0).abs() < 1e-9);
    }
}
