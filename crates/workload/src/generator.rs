//! Monte-Carlo job-mix generation (Section 5's initial conditions).
//!
//! A workload instance is a randomized list of jobs such that
//!
//! 1. the total work volume keeps the platform busy for at least the
//!    requested span (default 60 days), and
//! 2. each class's share of the generated node-time matches its target
//!    share within a tolerance (default 1 %, as in the paper),
//!
//! with per-job work durations jittered uniformly in `[0.8 w, 1.2 w]`
//! (Section 5). All jobs are presented to the scheduler at once in a
//! shuffled order, which becomes their priority.

use coopckpt_des::Duration;
use coopckpt_failure::{Sample, Uniform, Xoshiro256pp};
use coopckpt_model::{AppClass, ClassId, JobId, JobSpec, Platform};

/// Parameters of the workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The application classes with their target resource shares.
    pub classes: Vec<AppClass>,
    /// Minimum platform-filling span of the generated work.
    pub min_span: Duration,
    /// Work-duration jitter as `[lo, hi]` multiples of the class walltime.
    pub jitter: (f64, f64),
    /// Allowed absolute deviation of each class's share (fraction of the
    /// platform's node-time).
    pub share_tolerance: f64,
}

impl WorkloadSpec {
    /// Creates a spec with the paper's defaults: 60-day span, 0.8–1.2×
    /// jitter, 1 % share tolerance.
    ///
    /// # Panics
    ///
    /// Panics when `classes` is empty or shares do not sum to ≈1.
    pub fn new(classes: Vec<AppClass>) -> Self {
        assert!(!classes.is_empty(), "workload needs at least one class");
        let total_share: f64 = classes.iter().map(|c| c.resource_share).sum();
        assert!(
            (total_share - 1.0).abs() < 1e-6,
            "class shares must sum to 1, got {total_share}"
        );
        WorkloadSpec {
            classes,
            min_span: Duration::from_days(60.0),
            jitter: (0.8, 1.2),
            share_tolerance: 0.01,
        }
    }

    /// Overrides the minimum span.
    pub fn with_min_span(mut self, span: Duration) -> Self {
        assert!(span.is_positive(), "span must be positive");
        self.min_span = span;
        self
    }

    /// Overrides the jitter interval.
    pub fn with_jitter(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo <= hi, "invalid jitter [{lo}, {hi}]");
        self.jitter = (lo, hi);
        self
    }

    /// Generates one workload instance: a shuffled list of jobs whose
    /// priorities equal their position in the shuffle.
    pub fn generate(&self, platform: &Platform, rng: &mut Xoshiro256pp) -> Vec<JobSpec> {
        let target_node_seconds = platform.nodes as f64 * self.min_span.as_secs();
        let n_classes = self.classes.len();
        let mut class_node_seconds = vec![0.0f64; n_classes];
        let jitter = Uniform::new(self.jitter.0, self.jitter.1);

        // Draft phase: add jobs class-by-class, always topping up the class
        // whose share is furthest below target. This converges to the target
        // mix deterministically; randomness lives in the durations and the
        // final shuffle (which fixes priorities), like the paper's shuffled
        // simultaneous submission.
        let mut drafts: Vec<(usize, Duration)> = Vec::new();
        for iteration in 0u64.. {
            assert!(
                iteration < 1_000_000,
                "workload generation failed to converge (tolerance too tight \
                 for the job granularity?)"
            );
            let total: f64 = class_node_seconds.iter().sum();
            let enough_work = total >= target_node_seconds;
            // Signed deviation of each class from its target share. Adding a
            // job can only grow a share, so surpluses are corrected by
            // topping up the most-deficient class until granularity shrinks
            // below the tolerance (the paper keeps instantiating jobs until
            // the mix is within 1 % of the target percentages).
            let (worst, deficit, max_abs_dev) = {
                let mut worst = 0;
                let mut max_deficit = f64::NEG_INFINITY;
                let mut max_abs = 0.0f64;
                for (i, c) in self.classes.iter().enumerate() {
                    let share = if total > 0.0 {
                        class_node_seconds[i] / total
                    } else {
                        0.0
                    };
                    let dev = c.resource_share - share;
                    if dev > max_deficit {
                        max_deficit = dev;
                        worst = i;
                    }
                    max_abs = max_abs.max(dev.abs());
                }
                (worst, max_deficit, max_abs)
            };
            let _ = deficit;
            if enough_work && max_abs_dev <= self.share_tolerance {
                break;
            }
            let class = &self.classes[worst];
            let work = class.walltime * jitter.sample(rng);
            class_node_seconds[worst] += class.q_nodes as f64 * work.as_secs();
            drafts.push((worst, work));
        }

        // Shuffle to randomize priorities (Fisher–Yates with the instance
        // RNG, so the whole workload is a function of the seed).
        for i in (1..drafts.len()).rev() {
            let j = rng.next_bounded(i as u64 + 1) as usize;
            drafts.swap(i, j);
        }

        drafts
            .into_iter()
            .enumerate()
            .map(|(rank, (class_idx, work))| {
                JobSpec::from_class(
                    JobId(rank),
                    ClassId(class_idx),
                    &self.classes[class_idx],
                    work,
                    rank as i64,
                )
            })
            .collect()
    }

    /// The achieved share of each class in a generated job list, as a
    /// fraction of total node-time (used by tests and reports).
    pub fn achieved_shares(&self, jobs: &[JobSpec]) -> Vec<f64> {
        let mut per_class = vec![0.0f64; self.classes.len()];
        for job in jobs {
            per_class[job.class.0] += job.q_nodes as f64 * job.work.as_secs();
        }
        let total: f64 = per_class.iter().sum();
        if total > 0.0 {
            for v in &mut per_class {
                *v /= total;
            }
        }
        per_class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apex::classes_for;
    use crate::platforms::cielo;

    fn spec() -> (Platform, WorkloadSpec) {
        let p = cielo();
        let s = WorkloadSpec::new(classes_for(&p));
        (p, s)
    }

    #[test]
    fn generates_enough_work_for_span() {
        let (p, s) = spec();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let jobs = s.generate(&p, &mut rng);
        let total: f64 = jobs
            .iter()
            .map(|j| j.q_nodes as f64 * j.work.as_secs())
            .sum();
        let needed = p.nodes as f64 * Duration::from_days(60.0).as_secs();
        assert!(total >= needed, "work {total} < needed {needed}");
    }

    #[test]
    fn shares_within_tolerance() {
        let (p, s) = spec();
        for seed in 0..5 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let jobs = s.generate(&p, &mut rng);
            let shares = s.achieved_shares(&jobs);
            for (share, class) in shares.iter().zip(&s.classes) {
                assert!(
                    (share - class.resource_share).abs() <= s.share_tolerance + 1e-9,
                    "seed {seed}: class {} share {share} vs target {}",
                    class.name,
                    class.resource_share
                );
            }
        }
    }

    #[test]
    fn durations_are_jittered_within_bounds() {
        let (p, s) = spec();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let jobs = s.generate(&p, &mut rng);
        let mut distinct = std::collections::HashSet::new();
        for job in &jobs {
            let w = s.classes[job.class.0].walltime;
            let ratio = job.work / w;
            assert!((0.8..=1.2).contains(&ratio), "job {} ratio {ratio}", job.id);
            distinct.insert((job.work.as_secs() * 1000.0) as i64);
        }
        assert!(distinct.len() > jobs.len() / 2, "durations look constant");
    }

    #[test]
    fn priorities_are_a_permutation_of_ranks() {
        let (p, s) = spec();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let jobs = s.generate(&p, &mut rng);
        let mut prios: Vec<i64> = jobs.iter().map(|j| j.priority).collect();
        prios.sort_unstable();
        let expected: Vec<i64> = (0..jobs.len() as i64).collect();
        assert_eq!(prios, expected);
        // Ids equal priorities by construction (rank in shuffled order).
        for j in &jobs {
            assert_eq!(j.id.0 as i64, j.priority);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (p, s) = spec();
        let a = s.generate(&p, &mut Xoshiro256pp::seed_from_u64(9));
        let b = s.generate(&p, &mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(a, b);
        let c = s.generate(&p, &mut Xoshiro256pp::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn shorter_spans_generate_fewer_jobs() {
        let (p, s) = spec();
        let short = s.clone().with_min_span(Duration::from_days(10.0));
        let long = s.with_min_span(Duration::from_days(120.0));
        let a = short
            .generate(&p, &mut Xoshiro256pp::seed_from_u64(5))
            .len();
        let b = long.generate(&p, &mut Xoshiro256pp::seed_from_u64(5)).len();
        assert!(a < b, "10-day mix {a} jobs vs 120-day mix {b}");
    }

    #[test]
    #[should_panic(expected = "shares must sum to 1")]
    fn rejects_bad_shares() {
        let p = cielo();
        let mut classes = classes_for(&p);
        classes.pop();
        WorkloadSpec::new(classes);
    }

    #[test]
    fn regenerating_with_same_rng_stream_is_stable_under_clone() {
        let (p, s) = spec();
        let s2 = s.clone();
        let a = s.generate(&p, &mut Xoshiro256pp::seed_from_u64(42));
        let b = s2.generate(&p, &mut Xoshiro256pp::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn jobs_inherit_class_volumes() {
        let (p, s) = spec();
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let jobs = s.generate(&p, &mut rng);
        for j in &jobs {
            let c = &s.classes[j.class.0];
            assert_eq!(j.q_nodes, c.q_nodes);
            assert_eq!(j.ckpt_bytes, c.ckpt_bytes);
            assert_eq!(j.input_bytes, c.input_bytes);
            assert_eq!(j.output_bytes, c.output_bytes);
            assert!(!j.is_restart);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use coopckpt_model::{Bandwidth, Bytes};
    use proptest::prelude::*;

    /// Arbitrary 2–4 class mixes with shares summing to 1.
    fn arb_mix() -> impl Strategy<Value = (Platform, Vec<AppClass>)> {
        (
            64usize..512,
            proptest::collection::vec((1usize..32, 2.0f64..40.0, 1.0f64..10.0), 2..5),
        )
            .prop_map(|(nodes, rows)| {
                let platform = Platform::new(
                    "prop",
                    nodes,
                    8,
                    Bytes::from_gb(16.0),
                    Bandwidth::from_gbps(50.0),
                    coopckpt_des::Duration::from_years(5.0),
                )
                .unwrap();
                let weight_sum: f64 = rows.iter().map(|r| r.2).sum();
                let classes: Vec<AppClass> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, &(q, hours, w))| AppClass {
                        name: format!("c{i}"),
                        q_nodes: q.min(nodes),
                        walltime: coopckpt_des::Duration::from_hours(hours),
                        resource_share: w / weight_sum,
                        input_bytes: Bytes::from_gb(1.0),
                        output_bytes: Bytes::from_gb(2.0),
                        ckpt_bytes: Bytes::from_gb(q as f64 * 16.0),
                        regular_io_bytes: Bytes::ZERO,
                    })
                    .collect();
                (platform, classes)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For arbitrary class mixes the generator hits every share within
        /// tolerance and provides enough work for the span.
        #[test]
        fn generator_invariants((platform, classes) in arb_mix(), seed in proptest::num::u64::ANY) {
            let spec = WorkloadSpec::new(classes)
                .with_min_span(coopckpt_des::Duration::from_days(3.0));
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let jobs = spec.generate(&platform, &mut rng);
            prop_assert!(!jobs.is_empty());
            // Enough work.
            let total: f64 = jobs.iter().map(|j| j.q_nodes as f64 * j.work.as_secs()).sum();
            let needed = platform.nodes as f64 * coopckpt_des::Duration::from_days(3.0).as_secs();
            prop_assert!(total >= needed);
            // Shares within tolerance.
            let shares = spec.achieved_shares(&jobs);
            for (share, class) in shares.iter().zip(&spec.classes) {
                prop_assert!(
                    (share - class.resource_share).abs() <= spec.share_tolerance + 1e-9,
                    "class {} share {share} target {}", class.name, class.resource_share
                );
            }
            // Durations jittered within bounds.
            for j in &jobs {
                let ratio = j.work / spec.classes[j.class.0].walltime;
                prop_assert!((0.8..=1.2).contains(&ratio));
            }
        }
    }
}
