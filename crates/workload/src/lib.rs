//! Workload substrate: the LANL APEX application classes, the platforms the
//! paper evaluates, and Monte-Carlo job-mix generation.
//!
//! * [`apex`] embeds Table 1 of the paper (EAP, LAP, Silverton, VPIC from
//!   the APEX workflows report) and projects it onto any
//!   [`Platform`](coopckpt_model::Platform):
//!   a class's I/O volumes are percentages of its per-job memory footprint,
//!   so the same specification scales from Cielo to the prospective
//!   7 PB machine of Section 6.2.
//! * [`platforms`] provides [`platforms::cielo`] (143,104 cores, 286 TB,
//!   160 GB/s) and [`platforms::prospective`] (50,000 nodes, 7 PB).
//! * [`generator`] instantiates a random job list matching the class
//!   resource shares within tolerance and lasting at least the requested
//!   span — Section 5's initial-condition sampling.
//! * [`trace_workload`] replays a job log instead: streaming CSV /
//!   JSON-lines ingestion (`project, submit_time, nodes, walltime[,
//!   ckpt_bytes]`), a seeded `synthetic:...` generator, and the
//!   [`JobSource`] seam that feeds the engine one submission at a time so
//!   a 300k-job trace runs in bounded memory.
//!
//! ```
//! use coopckpt_workload::{apex, generator::WorkloadSpec, platforms};
//! use coopckpt_failure::Xoshiro256pp;
//!
//! let platform = platforms::cielo();
//! let classes = apex::classes_for(&platform);
//! let spec = WorkloadSpec::new(classes);
//! let mut rng = Xoshiro256pp::seed_from_u64(7);
//! let jobs = spec.generate(&platform, &mut rng);
//! assert!(!jobs.is_empty());
//! ```

pub mod apex;
pub mod generator;
pub mod platforms;
pub mod trace_workload;

pub use apex::{classes_for, ApexClassSpec, APEX_SPECS};
pub use generator::WorkloadSpec;
pub use platforms::{cielo, exascale, prospective};
pub use trace_workload::{
    JobSource, JobStream, MaterializedSource, SubmittedJob, SyntheticSource, SyntheticSpec,
    TraceClasses, TraceError, TraceJob, TraceReader, TraceSpec,
};
