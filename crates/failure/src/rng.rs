//! A frozen, portable pseudo-random generator: xoshiro256++.
//!
//! Algorithm by David Blackman and Sebastiano Vigna (2019), public domain
//! reference implementation at <https://prng.di.unimi.it/>. Seeding uses
//! SplitMix64 as the authors recommend, so a single `u64` seed expands to a
//! full 256-bit state with no zero-state risk.
//!
//! The generator implements the infallible `rand` core trait (`TryRng`
//! with `Error = Infallible`), so the whole `rand` adapter
//! surface (ranges, shuffles) remains available while the byte stream stays
//! bit-identical across platforms and `rand` releases.

use rand::rand_core::{Infallible, TryRng};

/// SplitMix64 step (Vigna). Used for seed expansion and nothing else.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ 1.0 — 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics when all four words are zero (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256pp { s }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_raw() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform double in the *open* interval `(0, 1)` — never exactly 0,
    /// safe to pass to `ln()` in inverse-transform samplers.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening-multiply rejection sampling (unbiased).
        let mut x = self.next_raw();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_raw();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Advances the state by one position without computing an output word:
    /// the state transition of [`next_raw`](Self::next_raw) minus the
    /// rotate-and-add result path, which never feeds back into the state.
    /// [`jump`](Self::jump) discards 256 outputs per call, so batching its
    /// steps through this transition-only path removes the dead result
    /// computation while landing on the exact same state.
    #[inline]
    fn step(&mut self) {
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
    }

    /// The "jump" function: advances the stream by 2^128 steps, producing a
    /// non-overlapping substream. Used to derive independent per-component
    /// streams (failures vs. workload jitter) from one master seed.
    pub fn jump(&mut self) {
        coopckpt_obs::count(coopckpt_obs::Counter::RngSubstreamDraws, 1);
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.step();
            }
        }
        self.s = s;
    }

    /// Returns a new generator 2^128 steps ahead, advancing `self` too.
    /// Successive calls yield mutually non-overlapping streams.
    pub fn split(&mut self) -> Xoshiro256pp {
        let child = self.clone();
        self.jump();
        child
    }
}

// Implementing the infallible `TryRng` gives us `rand_core::Rng` (and the
// user-facing `rand::RngExt`) through rand's blanket impls.
impl TryRng for Xoshiro256pp {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next_raw() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next_raw())
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Reference values computed from the public-domain C implementation
        // seeded with SplitMix64(0): s = {e220a8397b1dcdaf, 6e789e6aa1b965f4,
        // 06c45d188009454f, f88bb8a8724c81ec}.
        let rng = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(rng.s[0], 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.s[1], 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.s[2], 0x06c4_5d18_8009_454f);
        assert_eq!(rng.s[3], 0xf88b_b8a8_724c_81ec);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(1234);
        let mut b = Xoshiro256pp::seed_from_u64(1234);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..100_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn f64_mean_is_about_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_is_unbiased_over_small_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.next_bounded(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_rejects_zero() {
        Xoshiro256pp::seed_from_u64(0).next_bounded(0);
    }

    #[test]
    fn fast_jump_matches_the_draw_discarding_reference() {
        // jump() batches its 256 state advances through the output-free
        // `step`; the original implementation called next_raw and threw
        // the result away. Both must land on bit-identical state — this is
        // what keeps every downstream drawn sequence unchanged.
        fn reference_jump(rng: &mut Xoshiro256pp) {
            const JUMP: [u64; 4] = [
                0x180E_C6D3_3CFD_0ABA,
                0xD5A6_1266_F0C9_392C,
                0xA958_2618_E03F_C9AA,
                0x39AB_DC45_29B1_661C,
            ];
            let mut s = [0u64; 4];
            for j in JUMP {
                for b in 0..64 {
                    if (j & (1u64 << b)) != 0 {
                        s[0] ^= rng.s[0];
                        s[1] ^= rng.s[1];
                        s[2] ^= rng.s[2];
                        s[3] ^= rng.s[3];
                    }
                    rng.next_raw();
                }
            }
            rng.s = s;
        }
        for seed in [0, 1, 42, u64::MAX] {
            let mut fast = Xoshiro256pp::seed_from_u64(seed);
            let mut reference = Xoshiro256pp::seed_from_u64(seed);
            fast.jump();
            reference_jump(&mut reference);
            assert_eq!(fast, reference, "jump diverged for seed {seed}");
            // And the streams they produce afterwards agree too.
            for _ in 0..64 {
                assert_eq!(fast.next_raw(), reference.next_raw());
            }
        }
    }

    #[test]
    fn jump_produces_disjoint_streams() {
        let mut master = Xoshiro256pp::seed_from_u64(11);
        let mut a = master.split();
        let mut b = master.split();
        let xs: Vec<u64> = (0..64).map(|_| a.next_raw()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_raw()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fill_bytes_handles_all_lengths() {
        use rand::rand_core::Rng as _;
        for len in 0..=17 {
            let mut rng = Xoshiro256pp::seed_from_u64(3);
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                // First 8 bytes must be the first raw output, little-endian.
                let mut rng2 = Xoshiro256pp::seed_from_u64(3);
                assert_eq!(&buf[..8], &rng2.next_raw().to_le_bytes());
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn rngcore_integration_with_rand() {
        use rand::RngExt;
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let x: f64 = rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let y: u32 = rng.random_range(0..10);
        assert!(y < 10);
    }
}
