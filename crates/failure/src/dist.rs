//! Statistical distributions via inverse-transform and Box–Muller sampling.
//!
//! Implemented in-house (rather than through `rand_distr`) so sampled
//! sequences are frozen: a seed identifies a simulation instance forever.
//! Each distribution validates its parameters at construction and exposes
//! analytic moments used by the tests.

use crate::rng::Xoshiro256pp;

/// A distribution over `f64` that can be sampled with the project RNG.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64;

    /// The distribution mean (used by estimators and tests).
    fn mean(&self) -> f64;
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential distribution with the given **mean** (not rate).
///
/// Sampling is by inverse transform: `x = −mean · ln(u)`, `u ∈ (0,1)`.
/// This is the paper's failure inter-arrival law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless the mean is positive and finite.
    pub fn from_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { mean }
    }

    /// Creates an exponential distribution with the given rate `λ = 1/mean`.
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        Exponential { mean: 1.0 / rate }
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        -self.mean * rng.next_f64_open().ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Normal distribution, sampled with the Box–Muller transform.
///
/// Both variates of each transform are used (the spare is cached behind a
/// `Cell`), so sampling costs one `ln`+`sqrt`+`sin/cos` pair per two draws.
#[derive(Debug, Clone)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    spare: std::cell::Cell<Option<f64>>,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `std_dev` is non-negative and both parameters are finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters ({mean}, {std_dev})"
        );
        Normal {
            mean,
            std_dev,
            spare: std::cell::Cell::new(None),
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws a standard-normal variate.
    fn standard(&self, rng: &mut Xoshiro256pp) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare.set(Some(r * theta.sin()));
        r * theta.cos()
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.mean + self.std_dev * self.standard(rng)
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Weibull distribution with shape `k` and scale `λ`.
///
/// `k < 1` models infant-mortality failure behaviour observed on real HPC
/// systems (Tiwari et al., DSN'14); `k = 1` degenerates to the exponential.
/// Sampling is by inverse transform: `x = λ (−ln u)^{1/k}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution from shape and scale.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0,
            "invalid Weibull parameters (k={shape}, λ={scale})"
        );
        Weibull { shape, scale }
    }

    /// Creates a Weibull with shape `k` whose **mean** equals `mean`
    /// (`λ = mean / Γ(1 + 1/k)`), handy for MTBF-matched ablations.
    pub fn from_mean(shape: f64, mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "Weibull mean must be positive, got {mean}"
        );
        let scale = mean / gamma(1.0 + 1.0 / shape);
        Weibull::new(shape, scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.scale * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Log-normal distribution: `exp(N(µ, σ))`.
///
/// Offered for heavy-tailed job-duration experiments.
#[derive(Debug, Clone)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with the given **mean** and coefficient of
    /// variation `cv = std/mean` of the log-normal itself.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0 && cv.is_finite() && cv >= 0.0,
            "invalid log-normal moments (mean={mean}, cv={cv})"
        );
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal::new(mu, sigma2.sqrt())
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.normal.sample(rng).exp()
    }

    fn mean(&self) -> f64 {
        (self.normal.mean() + 0.5 * self.normal.std_dev() * self.normal.std_dev()).exp()
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate to
/// ~15 significant digits for the `x > 0` arguments used here.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(dist: &impl Sample, seed: u64, n: usize) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn sample_var(dist: &impl Sample, seed: u64, n: usize) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        assert_eq!(d.mean(), 4.0);
        assert!((sample_mean(&d, 2, 100_000) - 4.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_rejects_inverted_bounds() {
        Uniform::new(5.0, 5.0);
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::from_mean(100.0);
        assert!((sample_mean(&d, 3, 200_000) - 100.0).abs() < 1.5);
        // Var = mean² for exponential.
        assert!((sample_var(&d, 4, 200_000) - 10_000.0).abs() < 500.0);
        assert!((d.rate() - 0.01).abs() < 1e-15);
        let d2 = Exponential::from_rate(0.01);
        assert_eq!(d2.mean(), 100.0);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::from_mean(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..100_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn exponential_memoryless_tail() {
        // P(X > t) = exp(-t/mean): check the empirical tail at one mean.
        let d = Exponential::from_mean(50.0);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let n = 200_000;
        let tail = (0..n).filter(|_| d.sample(&mut rng) > 50.0).count() as f64 / n as f64;
        assert!((tail - (-1.0f64).exp()).abs() < 0.01, "tail {tail}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0);
        assert!((sample_mean(&d, 7, 200_000) - 10.0).abs() < 0.05);
        assert!((sample_var(&d, 8, 200_000) - 9.0).abs() < 0.2);
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let d = Normal::new(5.0, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 100.0);
        assert!((w.mean() - 100.0).abs() < 1e-9);
        assert!((sample_mean(&w, 10, 200_000) - 100.0).abs() < 1.5);
    }

    #[test]
    fn weibull_from_mean_matches_target() {
        for k in [0.7, 1.0, 1.5, 3.0] {
            let w = Weibull::from_mean(k, 42.0);
            assert!((w.mean() - 42.0).abs() < 1e-9, "k={k} mean {}", w.mean());
            assert!((sample_mean(&w, 11, 200_000) - 42.0).abs() < 1.0, "k={k}");
        }
    }

    #[test]
    fn lognormal_mean_matches_target() {
        let d = LogNormal::from_mean_cv(20.0, 0.5);
        assert!((d.mean() - 20.0).abs() < 1e-9);
        assert!((sample_mean(&d, 12, 400_000) - 20.0).abs() < 0.25);
    }

    #[test]
    fn gamma_function_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Exponential::from_mean(10.0);
        let a: Vec<f64> = {
            let mut rng = Xoshiro256pp::seed_from_u64(77);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = Xoshiro256pp::seed_from_u64(77);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Exponential samples are always positive and finite.
        #[test]
        fn exponential_support(seed in proptest::num::u64::ANY, mean in 1e-3f64..1e9) {
            let d = Exponential::from_mean(mean);
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            for _ in 0..100 {
                let x = d.sample(&mut rng);
                prop_assert!(x > 0.0 && x.is_finite());
            }
        }

        /// Weibull(mean-matched) keeps its mean across shapes.
        #[test]
        fn weibull_mean_invariant(k in 0.5f64..5.0, mean in 1.0f64..1e6) {
            let w = Weibull::from_mean(k, mean);
            prop_assert!((w.mean() - mean).abs() / mean < 1e-9);
        }

        /// Uniform samples stay in range.
        #[test]
        fn uniform_support(seed in proptest::num::u64::ANY, lo in -1e6f64..1e6, width in 1e-6f64..1e6) {
            let d = Uniform::new(lo, lo + width);
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            for _ in 0..100 {
                let x = d.sample(&mut rng);
                prop_assert!(x >= lo && x < lo + width);
            }
        }
    }
}
