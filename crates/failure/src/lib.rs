//! Failure substrate: deterministic random-number streams, statistical
//! distributions, and node-failure trace generation.
//!
//! The paper's evaluation injects node failures with exponentially
//! distributed inter-arrival times at the platform level (Section 5) and
//! discusses Weibull failures in related work; both are provided here.
//!
//! # Why an in-house RNG and distributions?
//!
//! Reproducibility across machines and library versions is a hard
//! requirement for a simulation study: every Monte-Carlo instance is
//! identified by a seed, and the same seed must replay the same execution
//! forever. We therefore implement [`rng::Xoshiro256pp`] (a small, fast,
//! well-studied generator with a frozen algorithm) and inverse-transform /
//! Box–Muller samplers in [`dist`], instead of depending on `StdRng`
//! (documented as non-portable across `rand` versions) or `rand_distr`
//! (outside the allowed dependency set).
//!
//! # Example
//!
//! ```
//! use coopckpt_failure::{rng::Xoshiro256pp, trace::FailureTrace};
//! use coopckpt_des::{Duration, Time};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let trace = FailureTrace::generate_exponential(
//!     &mut rng,
//!     1000,                           // nodes
//!     Duration::from_years(2.0),      // node MTBF
//!     Time::from_secs(86_400.0 * 30.0), // horizon: 30 days
//! );
//! // Mean inter-arrival ≈ node MTBF / nodes ≈ 17.5 h.
//! assert!(!trace.is_empty());
//! ```

pub mod classes;
pub mod dist;
pub mod rng;
pub mod trace;

pub use classes::{is_system_only, system_only, validate_classes, FailureClass};
pub use dist::{Exponential, LogNormal, Normal, Sample, Uniform, Weibull};
pub use rng::Xoshiro256pp;
pub use trace::{FailureEvent, FailureTrace};
