//! Node-failure traces.
//!
//! Following Section 5 of the paper, a simulation instance pre-computes its
//! failure schedule: inter-arrival times are drawn from an exponential (or,
//! for ablations, Weibull) distribution with the *system* MTBF
//! `µ_sys = µ_ind / N`, and each failure strikes a uniformly random node.

use crate::dist::{Exponential, Sample, Weibull};
use crate::rng::Xoshiro256pp;
use coopckpt_des::{Duration, Time};

/// One node failure: which node dies and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// The instant of the failure.
    pub at: Time,
    /// Index of the struck node in `[0, nodes)`.
    pub node: usize,
}

/// A precomputed, time-ordered schedule of node failures.
#[derive(Debug, Clone, Default)]
pub struct FailureTrace {
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// An empty (failure-free) trace.
    pub fn empty() -> Self {
        FailureTrace { events: Vec::new() }
    }

    /// Builds a trace from explicit events (must be time-ordered).
    ///
    /// # Panics
    ///
    /// Panics if events are not sorted by time.
    pub fn from_events(events: Vec<FailureEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "failure events must be time-ordered"
        );
        FailureTrace { events }
    }

    /// Generates a trace with exponential inter-arrival times at system rate
    /// `nodes / node_mtbf`, up to `horizon`. This is the paper's model.
    pub fn generate_exponential(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        node_mtbf: Duration,
        horizon: Time,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        let system_mean = node_mtbf.as_secs() / nodes as f64;
        let dist = Exponential::from_mean(system_mean);
        Self::generate_with(rng, nodes, &dist, horizon)
    }

    /// Generates a trace with Weibull inter-arrival times whose mean matches
    /// the exponential system MTBF (`shape < 1` = infant mortality). Used by
    /// the failure-distribution ablation.
    pub fn generate_weibull(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        node_mtbf: Duration,
        shape: f64,
        horizon: Time,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        let system_mean = node_mtbf.as_secs() / nodes as f64;
        let dist = Weibull::from_mean(shape, system_mean);
        Self::generate_with(rng, nodes, &dist, horizon)
    }

    /// Generates a trace from an arbitrary inter-arrival distribution.
    pub fn generate_with(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        inter_arrival: &impl Sample,
        horizon: Time,
    ) -> Self {
        assert!(horizon.is_finite(), "horizon must be finite");
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            t += inter_arrival.sample(rng);
            if t > horizon.as_secs() {
                break;
            }
            let node = rng.next_bounded(nodes as u64) as usize;
            events.push(FailureEvent {
                at: Time::from_secs(t),
                node,
            });
        }
        FailureTrace { events }
    }

    /// Number of failures in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no failures.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The failures, in time order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Iterates over the failures in time order.
    pub fn iter(&self) -> impl Iterator<Item = &FailureEvent> {
        self.events.iter()
    }

    /// Empirical mean time between failures of the trace (over the window
    /// `[0, horizon]` it was generated for, approximated by the last event).
    pub fn empirical_mtbf(&self) -> Option<Duration> {
        if self.events.len() < 2 {
            return None;
        }
        let span = self.events.last().unwrap().at.as_secs() - self.events[0].at.as_secs();
        Some(Duration::from_secs(span / (self.events.len() - 1) as f64))
    }

    /// Counts failures striking each node (histogram of length `nodes`).
    pub fn per_node_counts(&self, nodes: usize) -> Vec<u32> {
        let mut counts = vec![0u32; nodes];
        for ev in &self.events {
            counts[ev.node] += 1;
        }
        counts
    }
}

impl<'a> IntoIterator for &'a FailureTrace {
    type Item = &'a FailureEvent;
    type IntoIter = std::slice::Iter<'a, FailureEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_trace_matches_system_mtbf() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        // 1000 nodes, 2-year node MTBF → system MTBF ≈ 17.52 h.
        let horizon = Time::from_secs(Duration::from_days(3650.0).as_secs());
        let trace =
            FailureTrace::generate_exponential(&mut rng, 1000, Duration::from_years(2.0), horizon);
        let expected = Duration::from_years(2.0).as_secs() / 1000.0;
        let got = trace.empirical_mtbf().unwrap().as_secs();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "empirical MTBF {got} vs expected {expected}"
        );
    }

    #[test]
    fn trace_is_time_ordered() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let trace = FailureTrace::generate_exponential(
            &mut rng,
            100,
            Duration::from_years(1.0),
            Time::from_secs(Duration::from_days(365.0).as_secs()),
        );
        assert!(trace.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn nodes_struck_roughly_uniformly() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let nodes = 50;
        let trace = FailureTrace::generate_exponential(
            &mut rng,
            nodes,
            Duration::from_days(10.0), // very unreliable → many failures
            Time::from_secs(Duration::from_days(1000.0).as_secs()),
        );
        let counts = trace.per_node_counts(nodes);
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, trace.len());
        let expected = total as f64 / nodes as f64;
        assert!(expected > 50.0, "need enough samples, got {expected}");
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.5,
                "node {i} count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn weibull_trace_mean_matches() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let trace = FailureTrace::generate_weibull(
            &mut rng,
            1000,
            Duration::from_years(2.0),
            0.7,
            Time::from_secs(Duration::from_days(3650.0).as_secs()),
        );
        let expected = Duration::from_years(2.0).as_secs() / 1000.0;
        let got = trace.empirical_mtbf().unwrap().as_secs();
        assert!(
            (got - expected).abs() / expected < 0.08,
            "Weibull empirical MTBF {got} vs {expected}"
        );
    }

    #[test]
    fn empty_and_tiny_traces() {
        assert!(FailureTrace::empty().is_empty());
        assert!(FailureTrace::empty().empirical_mtbf().is_none());
        let one = FailureTrace::from_events(vec![FailureEvent {
            at: Time::from_secs(5.0),
            node: 0,
        }]);
        assert_eq!(one.len(), 1);
        assert!(one.empirical_mtbf().is_none());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn from_events_rejects_unsorted() {
        FailureTrace::from_events(vec![
            FailureEvent {
                at: Time::from_secs(5.0),
                node: 0,
            },
            FailureEvent {
                at: Time::from_secs(1.0),
                node: 1,
            },
        ]);
    }

    #[test]
    fn generation_is_deterministic() {
        let horizon = Time::from_secs(Duration::from_days(100.0).as_secs());
        let t1 = {
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            FailureTrace::generate_exponential(&mut rng, 64, Duration::from_years(1.0), horizon)
        };
        let t2 = {
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            FailureTrace::generate_exponential(&mut rng, 64, Duration::from_years(1.0), horizon)
        };
        assert_eq!(t1.events(), t2.events());
    }

    #[test]
    fn iterator_visits_all() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let trace = FailureTrace::generate_exponential(
            &mut rng,
            16,
            Duration::from_days(30.0),
            Time::from_secs(Duration::from_days(90.0).as_secs()),
        );
        assert_eq!(trace.iter().count(), trace.len());
        assert_eq!((&trace).into_iter().count(), trace.len());
    }
}
