//! Node-failure traces.
//!
//! Following Section 5 of the paper, a simulation instance pre-computes its
//! failure schedule: inter-arrival times are drawn from an exponential (or,
//! for ablations, Weibull) distribution with the *system* MTBF
//! `µ_sys = µ_ind / N`, and each failure strikes a uniformly random node.

use crate::classes::FailureClass;
use crate::dist::{Exponential, Sample, Weibull};
use crate::rng::Xoshiro256pp;
use coopckpt_des::{Duration, Time};

/// One node failure: which node dies, when, and how severe the strike is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// The instant of the failure.
    pub at: Time,
    /// Index of the struck node in `[0, nodes)`.
    pub node: usize,
    /// Index into the generating [`FailureClass`] mix (0 for single-class
    /// traces — the paper's model).
    pub class: usize,
}

/// A precomputed, time-ordered schedule of node failures.
#[derive(Debug, Clone, Default)]
pub struct FailureTrace {
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// An empty (failure-free) trace.
    pub fn empty() -> Self {
        FailureTrace { events: Vec::new() }
    }

    /// Builds a trace from explicit events (must be time-ordered).
    ///
    /// # Panics
    ///
    /// Panics if events are not sorted by time.
    pub fn from_events(events: Vec<FailureEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "failure events must be time-ordered"
        );
        FailureTrace { events }
    }

    /// Generates a trace with exponential inter-arrival times at system rate
    /// `nodes / node_mtbf`, up to `horizon`. This is the paper's model.
    pub fn generate_exponential(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        node_mtbf: Duration,
        horizon: Time,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        let system_mean = node_mtbf.as_secs() / nodes as f64;
        let dist = Exponential::from_mean(system_mean);
        Self::generate_with(rng, nodes, &dist, horizon)
    }

    /// Generates a trace with Weibull inter-arrival times whose mean matches
    /// the exponential system MTBF (`shape < 1` = infant mortality). Used by
    /// the failure-distribution ablation.
    pub fn generate_weibull(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        node_mtbf: Duration,
        shape: f64,
        horizon: Time,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        let system_mean = node_mtbf.as_secs() / nodes as f64;
        let dist = Weibull::from_mean(shape, system_mean);
        Self::generate_with(rng, nodes, &dist, horizon)
    }

    /// Generates a trace from an arbitrary inter-arrival distribution.
    pub fn generate_with(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        inter_arrival: &impl Sample,
        horizon: Time,
    ) -> Self {
        Self::generate_class(rng, nodes, inter_arrival, 0, horizon)
    }

    /// Generates the events of one failure class: like
    /// [`generate_with`](FailureTrace::generate_with), with every event
    /// tagged `class`.
    pub fn generate_class(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        inter_arrival: &impl Sample,
        class: usize,
        horizon: Time,
    ) -> Self {
        assert!(horizon.is_finite(), "horizon must be finite");
        let mut events = Vec::with_capacity(expected_events(inter_arrival.mean(), horizon));
        let mut t = 0.0;
        loop {
            t += inter_arrival.sample(rng);
            if t > horizon.as_secs() {
                break;
            }
            let node = rng.next_bounded(nodes as u64) as usize;
            events.push(FailureEvent {
                at: Time::from_secs(t),
                node,
                class,
            });
        }
        FailureTrace { events }
    }

    /// Generates a trace for a [`FailureClass`] mix: each class `c` draws
    /// its own events from a *dedicated RNG substream*
    /// ([`Xoshiro256pp::split`]) at rate `share_c × nodes / node_mtbf`,
    /// mean-matched Weibull when `weibull_shape` is given, exponential
    /// otherwise; the per-class schedules are then merged by time (ties
    /// break by class index).
    ///
    /// Two properties follow from the substream layout:
    ///
    /// * **Single-class degeneration.** The first split of `rng` replays
    ///   exactly the stream [`generate_exponential`](Self::generate_exponential)
    ///   (or [`generate_weibull`](Self::generate_weibull)) would have
    ///   drawn from `rng` directly, so a one-class mix with share 1
    ///   reproduces the paper's trace *bit for bit*.
    /// * **Share-sweep stability.** Zero-share classes still consume their
    ///   split, so sweeping one class's share through 0 never reshuffles
    ///   the other classes' draws.
    ///
    /// # Panics
    ///
    /// Panics when `classes` is empty, `nodes` is zero, or the horizon is
    /// not finite.
    pub fn generate_mixed(
        rng: &mut Xoshiro256pp,
        nodes: usize,
        node_mtbf: Duration,
        weibull_shape: Option<f64>,
        classes: &[FailureClass],
        horizon: Time,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(!classes.is_empty(), "need at least one failure class");
        assert!(horizon.is_finite(), "horizon must be finite");
        let system_mean = node_mtbf.as_secs() / nodes as f64;
        // The merged schedule has the full system rate regardless of how
        // it is shared out, so one up-front reservation covers the extends.
        let mut events: Vec<FailureEvent> =
            Vec::with_capacity(expected_events(system_mean, horizon));
        for (idx, class) in classes.iter().enumerate() {
            // Split unconditionally so every class owns a stable stream.
            let mut class_rng = rng.split();
            if class.share <= 0.0 {
                continue;
            }
            let mean = system_mean / class.share;
            let trace = match weibull_shape {
                Some(shape) => Self::generate_class(
                    &mut class_rng,
                    nodes,
                    &Weibull::from_mean(shape, mean),
                    idx,
                    horizon,
                ),
                None => Self::generate_class(
                    &mut class_rng,
                    nodes,
                    &Exponential::from_mean(mean),
                    idx,
                    horizon,
                ),
            };
            events.extend(trace.events);
        }
        // Stable by-time merge: per-class schedules are already sorted and
        // were appended in class order, so equal instants keep the lower
        // class index first — fully deterministic.
        events.sort_by(|a, b| a.at.as_secs().total_cmp(&b.at.as_secs()));
        FailureTrace { events }
    }

    /// Number of failures in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no failures.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The failures, in time order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Iterates over the failures in time order.
    pub fn iter(&self) -> impl Iterator<Item = &FailureEvent> {
        self.events.iter()
    }

    /// Empirical mean time between failures of the trace (over the window
    /// `[0, horizon]` it was generated for, approximated by the last event).
    pub fn empirical_mtbf(&self) -> Option<Duration> {
        if self.events.len() < 2 {
            return None;
        }
        let span = self.events.last().unwrap().at.as_secs() - self.events[0].at.as_secs();
        Some(Duration::from_secs(span / (self.events.len() - 1) as f64))
    }

    /// Counts failures striking each node (histogram of length `nodes`).
    pub fn per_node_counts(&self, nodes: usize) -> Vec<u32> {
        let mut counts = vec![0u32; nodes];
        for ev in &self.events {
            counts[ev.node] += 1;
        }
        counts
    }
}

/// Capacity estimate for a trace: the expected event count `horizon/mean`
/// plus a four-sigma Poisson margin, so almost every generation runs
/// without reallocating. Clamped so a pathological mean cannot demand an
/// absurd up-front allocation.
fn expected_events(mean: f64, horizon: Time) -> usize {
    if !(mean.is_finite() && mean > 0.0) || horizon.as_secs() <= 0.0 {
        return 0;
    }
    let expected = horizon.as_secs() / mean;
    (expected + 4.0 * expected.sqrt() + 8.0).min(4_000_000.0) as usize
}

impl<'a> IntoIterator for &'a FailureTrace {
    type Item = &'a FailureEvent;
    type IntoIter = std::slice::Iter<'a, FailureEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_trace_matches_system_mtbf() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        // 1000 nodes, 2-year node MTBF → system MTBF ≈ 17.52 h.
        let horizon = Time::from_secs(Duration::from_days(3650.0).as_secs());
        let trace =
            FailureTrace::generate_exponential(&mut rng, 1000, Duration::from_years(2.0), horizon);
        let expected = Duration::from_years(2.0).as_secs() / 1000.0;
        let got = trace.empirical_mtbf().unwrap().as_secs();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "empirical MTBF {got} vs expected {expected}"
        );
    }

    #[test]
    fn trace_is_time_ordered() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let trace = FailureTrace::generate_exponential(
            &mut rng,
            100,
            Duration::from_years(1.0),
            Time::from_secs(Duration::from_days(365.0).as_secs()),
        );
        assert!(trace.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn nodes_struck_roughly_uniformly() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let nodes = 50;
        let trace = FailureTrace::generate_exponential(
            &mut rng,
            nodes,
            Duration::from_days(10.0), // very unreliable → many failures
            Time::from_secs(Duration::from_days(1000.0).as_secs()),
        );
        let counts = trace.per_node_counts(nodes);
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, trace.len());
        let expected = total as f64 / nodes as f64;
        assert!(expected > 50.0, "need enough samples, got {expected}");
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.5,
                "node {i} count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn weibull_trace_mean_matches() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let trace = FailureTrace::generate_weibull(
            &mut rng,
            1000,
            Duration::from_years(2.0),
            0.7,
            Time::from_secs(Duration::from_days(3650.0).as_secs()),
        );
        let expected = Duration::from_years(2.0).as_secs() / 1000.0;
        let got = trace.empirical_mtbf().unwrap().as_secs();
        assert!(
            (got - expected).abs() / expected < 0.08,
            "Weibull empirical MTBF {got} vs {expected}"
        );
    }

    #[test]
    fn empty_and_tiny_traces() {
        assert!(FailureTrace::empty().is_empty());
        assert!(FailureTrace::empty().empirical_mtbf().is_none());
        let one = FailureTrace::from_events(vec![FailureEvent {
            at: Time::from_secs(5.0),
            node: 0,
            class: 0,
        }]);
        assert_eq!(one.len(), 1);
        assert!(one.empirical_mtbf().is_none());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn from_events_rejects_unsorted() {
        FailureTrace::from_events(vec![
            FailureEvent {
                at: Time::from_secs(5.0),
                node: 0,
                class: 0,
            },
            FailureEvent {
                at: Time::from_secs(1.0),
                node: 1,
                class: 0,
            },
        ]);
    }

    #[test]
    fn generation_is_deterministic() {
        let horizon = Time::from_secs(Duration::from_days(100.0).as_secs());
        let t1 = {
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            FailureTrace::generate_exponential(&mut rng, 64, Duration::from_years(1.0), horizon)
        };
        let t2 = {
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            FailureTrace::generate_exponential(&mut rng, 64, Duration::from_years(1.0), horizon)
        };
        assert_eq!(t1.events(), t2.events());
    }

    #[test]
    fn single_class_mix_is_bit_identical_to_the_plain_generator() {
        // The headline degeneration: one system class with share 1 must
        // replay exactly the paper's trace (same draws via the first
        // split), for both laws.
        let horizon = Time::from_secs(Duration::from_days(200.0).as_secs());
        let mix = crate::classes::system_only();
        let plain = {
            let mut rng = Xoshiro256pp::seed_from_u64(17);
            FailureTrace::generate_exponential(&mut rng, 128, Duration::from_years(1.0), horizon)
        };
        let mixed = {
            let mut rng = Xoshiro256pp::seed_from_u64(17);
            FailureTrace::generate_mixed(
                &mut rng,
                128,
                Duration::from_years(1.0),
                None,
                &mix,
                horizon,
            )
        };
        assert_eq!(plain.events(), mixed.events());
        let plain_w = {
            let mut rng = Xoshiro256pp::seed_from_u64(17);
            FailureTrace::generate_weibull(&mut rng, 128, Duration::from_years(1.0), 0.7, horizon)
        };
        let mixed_w = {
            let mut rng = Xoshiro256pp::seed_from_u64(17);
            FailureTrace::generate_mixed(
                &mut rng,
                128,
                Duration::from_years(1.0),
                Some(0.7),
                &mix,
                horizon,
            )
        };
        assert_eq!(plain_w.events(), mixed_w.events());
    }

    #[test]
    fn mixed_trace_preserves_the_total_rate_and_splits_by_share() {
        let horizon = Time::from_secs(Duration::from_days(5000.0).as_secs());
        let classes = vec![
            FailureClass::new("local", 0.75, 1),
            FailureClass::system("system", 0.25),
        ];
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let trace = FailureTrace::generate_mixed(
            &mut rng,
            200,
            Duration::from_years(2.0),
            None,
            &classes,
            horizon,
        );
        // Total rate matches the single-class system MTBF.
        let expected = Duration::from_years(2.0).as_secs() / 200.0;
        let got = trace.empirical_mtbf().unwrap().as_secs();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "mixed empirical MTBF {got} vs expected {expected}"
        );
        // Per-class counts follow the shares.
        let local = trace.iter().filter(|e| e.class == 0).count() as f64;
        let system = trace.iter().filter(|e| e.class == 1).count() as f64;
        let frac = local / (local + system);
        assert!((frac - 0.75).abs() < 0.03, "local share {frac} vs 0.75");
        // And the merge is time-ordered.
        assert!(trace.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn zero_share_classes_never_fire_but_keep_streams_stable() {
        // Dropping a class's share to zero must not reshuffle the other
        // classes' draws: the remaining class's events are identical
        // whether its neighbour is dormant or absent... with the dormant
        // class still occupying its split slot.
        let horizon = Time::from_secs(Duration::from_days(500.0).as_secs());
        let dormant = vec![
            FailureClass::new("local", 0.0, 1),
            FailureClass::system("system", 1.0),
        ];
        let active = vec![
            FailureClass::new("local", 0.5, 1),
            FailureClass::system("system", 0.5),
        ];
        let t_dormant = {
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            FailureTrace::generate_mixed(
                &mut rng,
                64,
                Duration::from_years(1.0),
                None,
                &dormant,
                horizon,
            )
        };
        assert!(t_dormant.iter().all(|e| e.class == 1));
        let t_active = {
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            FailureTrace::generate_mixed(
                &mut rng,
                64,
                Duration::from_years(1.0),
                None,
                &active,
                horizon,
            )
        };
        // The system class draws the same inter-arrival *sequence* in both
        // runs (same substream); only the rate scale differs. Check the
        // stream stability through the struck-node sequence, which is
        // scale-independent.
        let nodes_dormant: Vec<usize> = t_dormant.iter().map(|e| e.node).take(20).collect();
        let nodes_active: Vec<usize> = t_active
            .iter()
            .filter(|e| e.class == 1)
            .map(|e| e.node)
            .take(20)
            .collect();
        assert_eq!(nodes_dormant, nodes_active);
    }

    #[test]
    fn iterator_visits_all() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let trace = FailureTrace::generate_exponential(
            &mut rng,
            16,
            Duration::from_days(30.0),
            Time::from_secs(Duration::from_days(90.0).as_secs()),
        );
        assert_eq!(trace.iter().count(), trace.len());
        assert_eq!((&trace).into_iter().count(), trace.len());
    }
}
