//! Failure severity classes.
//!
//! The paper models a single kind of failure: a node dies and the victim
//! job restarts from its last checkpoint on the parallel file system. Real
//! platforms see a *spectrum* of failures (cf. FTI/VeloC and *stdchk*'s
//! tiered checkpoint storage): a transient software crash leaves every
//! staged checkpoint copy readable, a node loss destroys the victim's
//! node-local copy but not the shared burst buffer, a rack or system
//! outage wipes everything above the PFS.
//!
//! A [`FailureClass`] captures one such kind as plain data:
//!
//! * `share` — the fraction of the platform failure rate this class
//!   contributes. Shares across a class list sum to 1, so a class mix
//!   *partitions* the paper's failure process without changing the total
//!   rate (apples-to-apples against the single-class model).
//! * `severity` — how deep into the checkpoint storage hierarchy the
//!   strike reaches: a severity-`s` failure invalidates the victim's
//!   retained checkpoint copies at hierarchy levels `0..s` (level 0 is
//!   the shallowest tier). Recovery then reads back from the shallowest
//!   *surviving* copy at level ≥ `s`, or from the PFS when none survives.
//!   [`FailureClass::SYSTEM`] marks the paper's original semantics: every
//!   tier copy is lost and only the PFS copy can serve the restore.
//!
//! The default mix — a single system-severity class with share 1 — is
//! *exactly* the paper's model: the trace generator draws the same random
//! sequence, every failure recovers from the PFS, and simulation results
//! are bit-identical to the pre-class code path (asserted in
//! `tests/recovery_semantics.rs`).

use std::fmt;

/// One failure severity class: a share of the platform failure rate plus
/// the hierarchy depth its strikes invalidate.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureClass {
    /// Human-readable class name (`"transient"`, `"node"`, `"system"`, ...).
    pub name: String,
    /// Fraction of the platform failure rate contributed by this class
    /// (shares across a mix sum to 1). A zero share is allowed — the class
    /// never fires but keeps its dedicated RNG stream, so sweeping a share
    /// through 0 does not reshuffle the other classes' draws.
    pub share: f64,
    /// Number of shallowest hierarchy levels a strike invalidates:
    /// retained checkpoint copies at levels `< severity` are lost.
    /// `0` = even the shallowest copy survives (process crash);
    /// [`FailureClass::SYSTEM`] = only the PFS copy survives.
    pub severity: usize,
}

impl FailureClass {
    /// Severity sentinel meaning "every hierarchy level is invalidated;
    /// only the PFS copy survives" — the paper's original failure model.
    pub const SYSTEM: usize = usize::MAX;

    /// A class with an explicit severity.
    ///
    /// # Panics
    ///
    /// Panics unless `share` is finite and in `[0, 1]`.
    pub fn new(name: impl Into<String>, share: f64, severity: usize) -> Self {
        let class = FailureClass {
            name: name.into(),
            share,
            severity,
        };
        assert!(
            class.share.is_finite() && (0.0..=1.0).contains(&class.share),
            "failure class '{}': share must be in [0, 1], got {}",
            class.name,
            class.share
        );
        class
    }

    /// A system-severity class (PFS-only recovery).
    pub fn system(name: impl Into<String>, share: f64) -> Self {
        FailureClass::new(name, share, FailureClass::SYSTEM)
    }

    /// True when a strike of this class invalidates every hierarchy level.
    pub fn is_system(&self) -> bool {
        self.severity == FailureClass::SYSTEM
    }

    /// The severity as spec text: the number, or `"system"` for
    /// [`FailureClass::SYSTEM`].
    pub fn severity_label(&self) -> String {
        if self.is_system() {
            "system".to_string()
        } else {
            self.severity.to_string()
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.name, self.share, self.severity_label())
    }
}

/// The paper's implicit mix: one system-severity class carrying the whole
/// failure rate.
pub fn system_only() -> Vec<FailureClass> {
    vec![FailureClass::system("system", 1.0)]
}

/// Validates a class mix: at least one class, every share finite and
/// non-negative, shares summing to 1 (±1e-6 so hand-written decimal
/// fractions pass).
pub fn validate_classes(classes: &[FailureClass]) -> Result<(), String> {
    if classes.is_empty() {
        return Err("at least one failure class required".to_string());
    }
    let mut sum = 0.0;
    for class in classes {
        if !(class.share.is_finite() && class.share >= 0.0) {
            return Err(format!(
                "failure class '{}': share must be finite and non-negative, got {}",
                class.name, class.share
            ));
        }
        sum += class.share;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(format!("failure class shares must sum to 1, got {sum}"));
    }
    Ok(())
}

/// True when `classes` is behaviorally the paper's single-class model:
/// every non-zero share sits on a system-severity class.
pub fn is_system_only(classes: &[FailureClass]) -> bool {
    classes.iter().all(|c| c.share == 0.0 || c.is_system())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_the_paper_model() {
        let mix = system_only();
        assert_eq!(mix.len(), 1);
        assert!(mix[0].is_system());
        assert_eq!(mix[0].share, 1.0);
        assert!(validate_classes(&mix).is_ok());
        assert!(is_system_only(&mix));
    }

    #[test]
    fn severity_labels() {
        assert_eq!(FailureClass::new("node", 0.5, 1).severity_label(), "1");
        assert_eq!(FailureClass::system("sys", 0.5).severity_label(), "system");
        assert_eq!(
            format!("{}", FailureClass::new("node", 0.5, 1)),
            "node:0.5:1"
        );
    }

    #[test]
    fn validation_rejects_bad_mixes() {
        assert!(validate_classes(&[]).is_err());
        assert!(validate_classes(&[FailureClass::system("s", 0.5)]).is_err());
        assert!(validate_classes(&[
            FailureClass::new("a", 0.5, 0),
            FailureClass::system("b", 0.6),
        ])
        .is_err());
        assert!(validate_classes(&[
            FailureClass::new("a", 0.25, 0),
            FailureClass::new("b", 0.25, 1),
            FailureClass::system("c", 0.5),
        ])
        .is_ok());
        // Zero-share classes are fine as long as the rest sums to 1.
        assert!(validate_classes(&[
            FailureClass::new("a", 0.0, 0),
            FailureClass::system("b", 1.0),
        ])
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "share must be in [0, 1]")]
    fn constructor_rejects_out_of_range_shares() {
        FailureClass::new("bad", 1.5, 0);
    }

    #[test]
    fn system_only_detection() {
        assert!(is_system_only(&[
            FailureClass::new("dead", 0.0, 0),
            FailureClass::system("sys", 1.0),
        ]));
        assert!(!is_system_only(&[
            FailureClass::new("local", 0.5, 1),
            FailureClass::system("sys", 0.5),
        ]));
    }
}
