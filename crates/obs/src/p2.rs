//! The P² (Piecewise-Parabolic) streaming quantile estimator.
//!
//! Jain & Chlamtac (CACM 1985): estimates a single quantile of a stream in
//! O(1) memory by maintaining five markers whose heights follow a
//! piecewise-parabolic interpolation of the empirical CDF. Exact quantiles
//! (`coopckpt_stats::quantile`) need the full sample; P² supports
//! paper-scale Monte-Carlo sweeps (millions of instances) where buffering
//! every waste ratio is unnecessary.
//!
//! Lives in `coopckpt-obs` (the workspace's dependency-free leaf) so the
//! telemetry layer can aggregate sample times without pulling
//! `coopckpt-stats` — and with it the simulation-time types — into the
//! instrumented kernel crates. `coopckpt-stats` re-exports it under the
//! original `coopckpt_stats::P2Quantile` path.
//!
//! Accuracy is typically within a fraction of a percent of the exact
//! quantile for unimodal distributions; the property tests quantify this
//! against the exact estimator.

/// Linear-interpolation quantile of a **sorted** slice (type-7 estimator,
/// matching `coopckpt_stats::quantile`), used for exact small-sample
/// estimates before the five P² markers fill.
fn small_sample_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Streaming estimator for one quantile `q` of an unbounded sample.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `q ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics for `q` outside the open unit interval.
    pub fn new(q: f64) -> Self {
        assert!(
            q > 0.0 && q < 1.0,
            "P² estimates interior quantiles, got q = {q}"
        );
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The targeted quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observation must be finite");
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k containing x and clamp the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };

        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved by
    /// `d ∈ {−1, +1}`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabolic prediction leaves the bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate (`None` until at least one observation).
    ///
    /// With fewer than five observations the exact small-sample quantile is
    /// returned.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut buf: Vec<f64> = self.heights[..n].to_vec();
                buf.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                Some(small_sample_quantile(&buf, self.q))
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    fn exact(values: &mut [f64], q: f64) -> f64 {
        values.sort_by(|a, b| a.total_cmp(b));
        small_sample_quantile(values, q)
    }

    #[test]
    fn median_of_uniform_ramp() {
        let mut est = P2Quantile::new(0.5);
        // A deterministic shuffled ramp (multiplicative stepping).
        let xs = stream(10_001, |i| ((i * 7919) % 10_001) as f64);
        for &x in &xs {
            est.push(x);
        }
        let got = est.estimate().unwrap();
        let want = exact(&mut xs.clone(), 0.5);
        assert!(
            (got - want).abs() / want < 0.01,
            "P² median {got} vs exact {want}"
        );
    }

    #[test]
    fn tails_of_skewed_stream() {
        for q in [0.1, 0.9] {
            let mut est = P2Quantile::new(q);
            // Quadratic ramp: heavily skewed.
            let xs = stream(20_000, |i| {
                let r = ((i * 104_729) % 20_000) as f64 / 20_000.0;
                r * r * 1000.0
            });
            for &x in &xs {
                est.push(x);
            }
            let got = est.estimate().unwrap();
            let want = exact(&mut xs.clone(), q);
            assert!(
                (got - want).abs() < 0.05 * 1000.0 * q.max(1.0 - q),
                "q={q}: P² {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert!(est.estimate().is_none());
        est.push(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.push(1.0);
        est.push(2.0);
        // Exact median of {1,2,3}.
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn constant_stream() {
        let mut est = P2Quantile::new(0.75);
        for _ in 0..1000 {
            est.push(42.0);
        }
        assert_eq!(est.estimate(), Some(42.0));
    }

    #[test]
    fn monotone_stream() {
        let mut est = P2Quantile::new(0.25);
        for i in 0..10_000 {
            est.push(i as f64);
        }
        let got = est.estimate().unwrap();
        assert!(
            (got - 2500.0).abs() < 100.0,
            "first quartile of 0..10000 ≈ 2500, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "interior quantiles")]
    fn rejects_extreme_q() {
        P2Quantile::new(1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// P² stays within the observed range and lands near the exact
        /// quantile for moderately sized random streams.
        #[test]
        fn tracks_exact_quantile(
            xs in proptest::collection::vec(-1e3f64..1e3, 100..2000),
            qi in 1usize..10,
        ) {
            let q = qi as f64 / 10.0;
            let mut est = P2Quantile::new(q);
            for &x in &xs {
                est.push(x);
            }
            let got = est.estimate().unwrap();
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let lo = sorted[0];
            let hi = sorted[sorted.len() - 1];
            prop_assert!(got >= lo && got <= hi, "estimate {got} escaped [{lo}, {hi}]");
            let want = small_sample_quantile(&sorted, q);
            // Tolerance: 15 % of the sample range (P² is approximate for
            // small adversarial streams; typical error is far lower).
            prop_assert!(
                (got - want).abs() <= 0.15 * (hi - lo) + 1e-9,
                "q={q}: P² {got} vs exact {want} (range {lo}..{hi})"
            );
        }
    }
}
