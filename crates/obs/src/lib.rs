//! Zero-cost-when-off telemetry for the coopckpt workspace.
//!
//! A process-wide registry of named monotonic [`Counter`]s, log₂-bucketed
//! value [`Hist`]ograms, and RAII [`span`] timers over simulation
//! [`Phase`]s. Telemetry is **off by default**: every recording entry
//! point starts with a single relaxed [`AtomicBool`] load and returns
//! immediately, so instrumented hot paths cost one predictable branch.
//! Enabling it (via [`init`], [`init_from_env`], or [`set_enabled`]) only
//! ever changes what is *recorded* — instrumented code must never branch
//! on telemetry to alter simulated results, and `tests/telemetry_semantics.rs`
//! asserts reports stay bit-identical with telemetry on vs. off.
//!
//! # Scopes
//!
//! Recordings always accumulate into a process-wide root scope
//! ([`totals`]) and, additionally, into the innermost [`Scope`] the
//! current thread has [`enter`]ed. Campaign workers give each point its
//! own scope so per-point queue/cache deltas survive concurrent
//! execution; worker threads spawned *inside* a point adopt the parent's
//! scope via [`current_scope`] + [`enter`].
//!
//! # Journal
//!
//! [`journal_line`] appends one line to the JSON-lines run journal when
//! one was configured with [`init`]. Callers build the record text
//! themselves (the `coopckpt` crate uses its `json` module) — this crate
//! stays a leaf below the JSON layer.

use std::cell::RefCell;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub mod p2;

pub use p2::P2Quantile;

/// Monotonic event counters. Phase timers accumulate elapsed nanoseconds
/// under the same mechanism (`*Ns` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Events scheduled into the DES queue.
    QueueInserts,
    /// Events physically cancelled before firing.
    QueueCancels,
    /// Events popped and dispatched.
    QueuePops,
    /// Calendar-queue bucket-array rebuilds.
    QueueResizes,
    /// Operating-point cache probes (`OpPointCache::run_all`).
    OpCacheLookups,
    /// ... of which were already memoized.
    OpCacheHits,
    /// ... of which ran the Monte-Carlo sweep.
    OpCacheMisses,
    /// On-disk campaign result-cache probes.
    ResultCacheLookups,
    /// ... served from disk.
    ResultCacheHits,
    /// ... recomputed.
    ResultCacheMisses,
    /// I/O requests that had to queue for a PFS token.
    TokenWaits,
    /// Checkpoints absorbed token-free by a storage tier.
    TierAbsorbs,
    /// Tier admissions refused for lack of room (spilled downward).
    TierSpills,
    /// Background drain transfers completed.
    TierDrains,
    /// RNG substream jumps (`Xoshiro256pp::jump`).
    RngSubstreamDraws,
    /// Nanoseconds generating failure traces and workloads.
    TraceGenNs,
    /// Nanoseconds replaying events through the engine.
    ReplayNs,
    /// Nanoseconds rendering reports.
    RenderNs,
    /// Nanoseconds across individual Monte-Carlo samples.
    SampleNs,
}

/// Number of [`Counter`] variants (array sizing).
pub const NUM_COUNTERS: usize = 19;

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::QueueInserts,
        Counter::QueueCancels,
        Counter::QueuePops,
        Counter::QueueResizes,
        Counter::OpCacheLookups,
        Counter::OpCacheHits,
        Counter::OpCacheMisses,
        Counter::ResultCacheLookups,
        Counter::ResultCacheHits,
        Counter::ResultCacheMisses,
        Counter::TokenWaits,
        Counter::TierAbsorbs,
        Counter::TierSpills,
        Counter::TierDrains,
        Counter::RngSubstreamDraws,
        Counter::TraceGenNs,
        Counter::ReplayNs,
        Counter::RenderNs,
        Counter::SampleNs,
    ];

    /// Stable snake_case name used in reports and journals.
    pub fn name(self) -> &'static str {
        match self {
            Counter::QueueInserts => "queue_inserts",
            Counter::QueueCancels => "queue_cancels",
            Counter::QueuePops => "queue_pops",
            Counter::QueueResizes => "queue_resizes",
            Counter::OpCacheLookups => "op_cache_lookups",
            Counter::OpCacheHits => "op_cache_hits",
            Counter::OpCacheMisses => "op_cache_misses",
            Counter::ResultCacheLookups => "result_cache_lookups",
            Counter::ResultCacheHits => "result_cache_hits",
            Counter::ResultCacheMisses => "result_cache_misses",
            Counter::TokenWaits => "token_waits",
            Counter::TierAbsorbs => "tier_absorbs",
            Counter::TierSpills => "tier_spills",
            Counter::TierDrains => "tier_drains",
            Counter::RngSubstreamDraws => "rng_substream_draws",
            Counter::TraceGenNs => "trace_gen_ns",
            Counter::ReplayNs => "replay_ns",
            Counter::RenderNs => "render_ns",
            Counter::SampleNs => "sample_ns",
        }
    }

    /// True for the `*Ns` phase-time accumulators.
    pub fn is_phase_ns(self) -> bool {
        matches!(
            self,
            Counter::TraceGenNs | Counter::ReplayNs | Counter::RenderNs | Counter::SampleNs
        )
    }
}

/// Value histograms (log₂ buckets plus exact count / sum / max).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Calendar buckets examined per `next_slot` query.
    QueueBucketScans,
    /// Bucket occupancy observed after each calendar insert.
    QueueBucketOccupancy,
    /// Bitset words examined per successful `NodePool` allocation.
    PoolScanWords,
    /// `peak_live_jobs` at the end of each simulated instance.
    PeakLiveJobs,
}

/// Number of [`Hist`] variants (array sizing).
pub const NUM_HISTS: usize = 4;

impl Hist {
    /// Every histogram, in declaration order.
    pub const ALL: [Hist; NUM_HISTS] = [
        Hist::QueueBucketScans,
        Hist::QueueBucketOccupancy,
        Hist::PoolScanWords,
        Hist::PeakLiveJobs,
    ];

    /// Stable snake_case name used in reports and journals.
    pub fn name(self) -> &'static str {
        match self {
            Hist::QueueBucketScans => "queue_bucket_scans",
            Hist::QueueBucketOccupancy => "queue_bucket_occupancy",
            Hist::PoolScanWords => "pool_scan_words",
            Hist::PeakLiveJobs => "peak_live_jobs",
        }
    }
}

/// Profiled simulation phases (see [`span`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Failure-trace and workload generation.
    TraceGen,
    /// Event replay through the engine (`sim.run`).
    Replay,
    /// Report rendering.
    Render,
    /// One full Monte-Carlo sample (feeds the sample-time quantiles).
    Sample,
}

impl Phase {
    fn counter(self) -> Counter {
        match self {
            Phase::TraceGen => Counter::TraceGenNs,
            Phase::Replay => Counter::ReplayNs,
            Phase::Render => Counter::RenderNs,
            Phase::Sample => Counter::SampleNs,
        }
    }
}

/// Log₂ bucket count: bucket 0 holds value 0, bucket `k ≥ 1` holds
/// `[2^(k−1), 2^k)`; the top bucket absorbs everything beyond 2²².
const HIST_BUCKETS: usize = 24;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

#[derive(Debug)]
struct HistBins {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistBins {
    fn new() -> HistBins {
        HistBins {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges a pre-aggregated batch: `count` observations totalling
    /// `sum` with maximum `max`. Count, sum and max stay exact; bucket
    /// attribution uses the batch mean (batching callers trade bucket
    /// shape for zero per-observation cost).
    fn merge(&self, count: u64, sum: u64, max: u64) {
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
        self.buckets[bucket_of(sum / count)].fetch_add(count, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Sample-time quantile state (P² needs `&mut`, hence the mutex; samples
/// are milliseconds-scale, so contention is negligible).
#[derive(Debug)]
struct SampleTimes {
    p50: P2Quantile,
    p95: P2Quantile,
    max_ns: u64,
}

impl SampleTimes {
    fn new() -> SampleTimes {
        SampleTimes {
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            max_ns: 0,
        }
    }
}

/// One attribution bucket: counters + histograms + sample-time quantiles.
#[derive(Debug)]
pub struct ScopeStats {
    counters: [AtomicU64; NUM_COUNTERS],
    hists: [HistBins; NUM_HISTS],
    samples: Mutex<SampleTimes>,
}

impl ScopeStats {
    fn new() -> ScopeStats {
        ScopeStats {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistBins::new()),
            samples: Mutex::new(SampleTimes::new()),
        }
    }

    fn snapshot(&self) -> Snapshot {
        let samples = {
            let t = lock(&self.samples);
            SampleSnapshot {
                count: t.p50.count() as u64,
                p50_ns: t.p50.estimate().unwrap_or(0.0),
                p95_ns: t.p95.estimate().unwrap_or(0.0),
                max_ns: t.max_ns,
            }
        };
        Snapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            hists: std::array::from_fn(|i| self.hists[i].snapshot()),
            samples,
        }
    }
}

/// A cloneable handle to a [`ScopeStats`] attribution bucket.
#[derive(Debug, Clone)]
pub struct Scope(Arc<ScopeStats>);

impl Scope {
    /// Reads the scope's accumulated state.
    pub fn snapshot(&self) -> Snapshot {
        self.0.snapshot()
    }
}

/// Point-in-time read of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Log₂ occupancy counts (see [`Hist`] docs for the bucket rule).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time read of the Monte-Carlo sample-time distribution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleSnapshot {
    /// Samples timed.
    pub count: u64,
    /// P² median sample time, nanoseconds.
    pub p50_ns: f64,
    /// P² 95th-percentile sample time, nanoseconds.
    pub p95_ns: f64,
    /// Slowest sample, nanoseconds.
    pub max_ns: u64,
}

/// Point-in-time read of a whole scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    counters: [u64; NUM_COUNTERS],
    hists: [HistSnapshot; NUM_HISTS],
    /// Sample-time quantiles.
    pub samples: SampleSnapshot,
}

impl Snapshot {
    /// The counter's value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The histogram's state.
    pub fn hist(&self, h: Hist) -> &HistSnapshot {
        &self.hists[h as usize]
    }
}

// --- Process-wide state -----------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static JOURNAL: Mutex<Option<File>> = Mutex::new(None);

fn root() -> &'static ScopeStats {
    static ROOT: OnceLock<ScopeStats> = OnceLock::new();
    ROOT.get_or_init(ScopeStats::new)
}

thread_local! {
    /// The innermost entered scope; `None` means root-only recording.
    static CURRENT: RefCell<Option<Arc<ScopeStats>>> = const { RefCell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Telemetry must never take the process down; ignore poisoning.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether telemetry is recording. Inlined so disabled call sites cost
/// one relaxed load and a branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off (tests; production uses [`init`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables telemetry, optionally routing the run journal to `journal`
/// (created/truncated). `init(None)` records counters without a journal.
pub fn init(journal: Option<&Path>) -> std::io::Result<()> {
    let file = match journal {
        Some(p) => Some(File::create(p)?),
        None => None,
    };
    *lock(&JOURNAL) = file;
    set_enabled(true);
    Ok(())
}

/// Applies the `COOPCKPT_TELEMETRY` environment variable: unset or empty
/// leaves telemetry off; `1`/`true` enables counters without a journal;
/// anything else is the journal path.
pub fn init_from_env() -> std::io::Result<()> {
    match std::env::var("COOPCKPT_TELEMETRY") {
        Ok(v) if v.is_empty() => Ok(()),
        Ok(v) if v == "1" || v == "true" => {
            set_enabled(true);
            Ok(())
        }
        Ok(v) => init(Some(Path::new(&v))),
        Err(_) => Ok(()),
    }
}

/// Appends one line to the run journal, if telemetry is on and a journal
/// was configured. Lines are flushed eagerly so a stalled run still
/// leaves a readable journal.
pub fn journal_line(line: &str) {
    if !enabled() {
        return;
    }
    if let Some(f) = lock(&JOURNAL).as_mut() {
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }
}

/// Applies `f` to the root scope and, when the thread has entered one,
/// the current scope.
#[inline]
fn record(f: impl Fn(&ScopeStats)) {
    f(root());
    CURRENT.with(|c| {
        if let Some(s) = c.borrow().as_deref() {
            f(s);
        }
    });
}

/// Adds `n` to a counter. No-op when telemetry is off.
#[inline]
pub fn count(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    record(|s| {
        s.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    });
}

/// Records one histogram observation. No-op when telemetry is off.
#[inline]
pub fn observe(h: Hist, v: u64) {
    if !enabled() {
        return;
    }
    record(|s| s.hists[h as usize].observe(v));
}

/// Merges a pre-aggregated batch of observations — `count` of them,
/// totalling `sum`, with maximum `max` — into `h`. Hot loops that cannot
/// afford a per-observation call accumulate plain local counters and
/// publish them once through this; count/sum/max stay exact, bucket
/// attribution collapses to the batch mean. No-op when telemetry is off
/// or `count` is zero.
#[inline]
pub fn observe_batch(h: Hist, count: u64, sum: u64, max: u64) {
    if !enabled() {
        return;
    }
    record(|s| s.hists[h as usize].merge(count, sum, max));
}

/// An RAII phase timer; elapsed wall-clock nanoseconds are added to the
/// phase's counter on drop. [`Phase::Sample`] spans additionally feed the
/// sample-time quantiles.
#[must_use = "a span records on drop; bind it to a variable for the phase's duration"]
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    phase: Phase,
    start: Instant,
}

/// Starts timing a phase. When telemetry is off the returned guard is
/// empty and its drop does nothing.
#[inline]
pub fn span(phase: Phase) -> Span {
    if !enabled() {
        return Span(None);
    }
    Span(Some(SpanInner {
        phase,
        start: Instant::now(),
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        let ns = inner.start.elapsed().as_nanos() as u64;
        record(|s| {
            s.counters[inner.phase.counter() as usize].fetch_add(ns, Ordering::Relaxed);
            if inner.phase == Phase::Sample {
                let mut t = lock(&s.samples);
                t.p50.push(ns as f64);
                t.p95.push(ns as f64);
                t.max_ns = t.max_ns.max(ns);
            }
        });
    }
}

/// Creates a fresh attribution scope.
pub fn new_scope() -> Scope {
    Scope(Arc::new(ScopeStats::new()))
}

/// The scope the current thread records into, if any (and telemetry is
/// on). Worker threads pass this handle to children so their recordings
/// attribute to the same campaign point.
pub fn current_scope() -> Option<Scope> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone().map(Scope))
}

/// Restores the previously entered scope on drop.
#[must_use = "dropping the guard immediately exits the scope"]
#[derive(Debug)]
pub struct ScopeGuard {
    prev: Option<Arc<ScopeStats>>,
}

/// Makes `scope` the current thread's attribution target until the
/// returned guard drops (which restores the previous target).
pub fn enter(scope: &Scope) -> ScopeGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(scope.0.clone()));
    ScopeGuard { prev }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Reads the process-wide totals (the root scope).
pub fn totals() -> Snapshot {
    root().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global state: every test that flips ENABLED or records
    /// must hold this.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        lock(&GATE)
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        let before = totals();
        count(Counter::QueueInserts, 7);
        observe(Hist::PoolScanWords, 3);
        drop(span(Phase::Replay));
        assert_eq!(totals(), before);
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let _g = guard();
        set_enabled(true);
        let before = totals();
        count(Counter::QueueInserts, 2);
        count(Counter::QueueInserts, 3);
        observe(Hist::PoolScanWords, 4);
        observe(Hist::PoolScanWords, 10);
        set_enabled(false);
        let after = totals();
        assert_eq!(
            after.counter(Counter::QueueInserts) - before.counter(Counter::QueueInserts),
            5
        );
        let (h0, h1) = (
            before.hist(Hist::PoolScanWords).clone(),
            after.hist(Hist::PoolScanWords).clone(),
        );
        assert_eq!(h1.count - h0.count, 2);
        assert_eq!(h1.sum - h0.sum, 14);
        assert!(h1.max >= 10);
        let bucket_total: u64 = h1.buckets.iter().sum();
        assert_eq!(bucket_total, h1.count);
    }

    #[test]
    fn scopes_attribute_and_nest() {
        let _g = guard();
        set_enabled(true);
        let outer = new_scope();
        let inner = new_scope();
        {
            let _o = enter(&outer);
            count(Counter::QueuePops, 1);
            {
                let _i = enter(&inner);
                count(Counter::QueuePops, 10);
            }
            // Guard dropped: back to outer.
            count(Counter::QueuePops, 100);
        }
        set_enabled(false);
        assert_eq!(outer.snapshot().counter(Counter::QueuePops), 101);
        assert_eq!(inner.snapshot().counter(Counter::QueuePops), 10);
    }

    #[test]
    fn scope_handles_cross_threads() {
        let _g = guard();
        set_enabled(true);
        let scope = new_scope();
        let handle = {
            let _s = enter(&scope);
            current_scope().expect("entered scope is current")
        };
        std::thread::scope(|s| {
            s.spawn(|| {
                let _s = enter(&handle);
                count(Counter::RngSubstreamDraws, 5);
            });
        });
        set_enabled(false);
        assert_eq!(scope.snapshot().counter(Counter::RngSubstreamDraws), 5);
    }

    #[test]
    fn sample_spans_feed_quantiles() {
        let _g = guard();
        set_enabled(true);
        let scope = new_scope();
        {
            let _s = enter(&scope);
            for _ in 0..8 {
                drop(span(Phase::Sample));
            }
        }
        set_enabled(false);
        let snap = scope.snapshot();
        assert_eq!(snap.samples.count, 8);
        assert!(snap.samples.max_ns >= snap.samples.p50_ns as u64 / 2);
        assert!(snap.counter(Counter::SampleNs) >= snap.samples.max_ns);
    }

    #[test]
    fn bucket_rule() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn names_are_stable_and_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "telemetry names must be unique");
        assert!(Counter::SampleNs.is_phase_ns());
        assert!(!Counter::QueuePops.is_phase_ns());
    }
}
