//! Criterion micro-benchmarks for the simulator's hot paths, plus one
//! end-to-end benchmark per strategy.
//!
//! Run with `cargo bench -p coopckpt-bench`.
//!
//! The end-to-end group simulates a 7-day Cielo instance per strategy and
//! dominates the wall-clock (minutes). Setting `COOPCKPT_BENCH_FAST=1`
//! shrinks its horizon to one day — numbers are then only indicative, but
//! the group still exercises the full engine, which is what a CI smoke run
//! needs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use coopckpt::prelude::*;
use coopckpt_des::{EventQueue, Time as DesTime};
use coopckpt_failure::{FailureTrace, Xoshiro256pp};
use coopckpt_io::{LinearShare, Pfs};
use coopckpt_theory::{lower_bound, ClassParams};

/// DES kernel: schedule + drain a large batch of events.
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("des/event_queue_10k", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let times: Vec<f64> = (0..10_000).map(|_| rng.next_f64() * 1e6).collect();
        b.iter_batched(
            || times.clone(),
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.into_iter().enumerate() {
                    q.schedule(DesTime::from_secs(t), i);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        );
    });
}

/// DES kernel under heavy cancellation at campaign scale: the engine's
/// dominant pattern — checkpoint-due and milestone events are scheduled
/// far ahead and almost always cancelled before they fire (commit
/// completions, failures, and restarts each re-arm them) — on top of a
/// large standing population of live events (every running job holds
/// timers; big platforms keep O(10⁵) in flight). The calendar queue
/// removes cancelled events physically in O(1) against flat index-based
/// buckets; the heap oracle pays a deep sift plus two `HashMap` touches
/// per churned event and accumulates far-future tombstones until its
/// compaction sweep rebuilds the heap. Both run here — same workload —
/// so `BENCH_des.json` records the speedup, and `bench_baseline check`
/// pins the calendar queue at ≥5× over the heap baseline.
fn bench_event_queue_cancel_heavy(c: &mut Criterion) {
    for (name, heap_oracle) in [
        ("des/event_queue_cancel_heavy", false),
        ("des/event_queue_cancel_heavy_heap", true),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut q = if heap_oracle {
                    EventQueue::heap_oracle()
                } else {
                    EventQueue::new()
                };
                // The standing population: live far-future timers that
                // survive the whole churn phase.
                for i in 0..100_000 {
                    q.schedule(DesTime::from_secs(1e7 + i as f64 * 100.0), i);
                }
                // The churn: batches scheduled far ahead, all but one
                // cancelled before anything fires.
                let mut t = 0.0f64;
                for round in 0..4000 {
                    let keys: Vec<_> = (0..64)
                        .map(|i| {
                            t += 1.0;
                            // Far-future events: tombstones never surface
                            // on their own.
                            q.schedule(DesTime::from_secs(t + 1e7), round * 64 + i)
                        })
                        .collect();
                    for k in &keys[1..] {
                        q.cancel(*k);
                    }
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                black_box(n)
            });
        });
    }
}

/// Fluid PFS: 64 concurrent streams joining and draining.
fn bench_pfs(c: &mut Criterion) {
    c.bench_function("io/pfs_64_streams", |b| {
        b.iter(|| {
            let mut pfs: Pfs<usize> = Pfs::new(Bandwidth::from_gbps(100.0), LinearShare);
            for i in 0..64 {
                pfs.start(
                    DesTime::from_secs(i as f64 * 0.1),
                    Bytes::from_gb(10.0 + i as f64),
                    1.0 + (i % 7) as f64,
                    i,
                );
            }
            pfs.advance(DesTime::from_secs(1e5));
            black_box(pfs.take_completed().len())
        });
    });
}

/// The λ-solver on the APEX/Cielo operating point of Fig. 2.
fn bench_lambda_solver(c: &mut Criterion) {
    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let params: Vec<ClassParams> = coopckpt_workload::classes_for(&platform)
        .iter()
        .map(|cl| ClassParams::from_app_class(cl, &platform))
        .collect();
    c.bench_function("theory/lower_bound_apex", |b| {
        b.iter(|| black_box(lower_bound(&platform, &params).waste));
    });
}

/// Failure-trace generation for a 60-day Cielo instance.
fn bench_failure_trace(c: &mut Criterion) {
    c.bench_function("failure/trace_60d_cielo", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let trace = FailureTrace::generate_exponential(
                &mut rng,
                17_888,
                Duration::from_years(2.0),
                DesTime::from_secs(Duration::from_days(60.0).as_secs()),
            );
            black_box(trace.len())
        });
    });
}

/// End-to-end: one 7-day APEX/Cielo instance per strategy at 40 GB/s
/// (1-day when `COOPCKPT_BENCH_FAST` is set).
fn bench_end_to_end(c: &mut Criterion) {
    let fast = std::env::var("COOPCKPT_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
    let span_days = if fast { 1.0 } else { 7.0 };
    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let classes = coopckpt_workload::classes_for(&platform);
    let mut group = c.benchmark_group(format!("sim/{span_days:.0}day_cielo_40gbps"));
    group.sample_size(10);
    for strategy in Strategy::all_seven() {
        let config = SimConfig::new(platform.clone(), classes.clone(), strategy)
            .with_span(Duration::from_days(span_days));
        let mut seed = 0u64;
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_simulation(&config, seed).waste_ratio)
            });
        });
    }
    group.finish();
}

/// Scale stress: stream a 100k-job synthetic trace through the engine
/// (10k jobs under `COOPCKPT_BENCH_FAST`). The jobs are produced lazily
/// by the streaming `JobSource`, so trace generation, admission at
/// submit time, and per-project accounting are all inside the measured
/// loop; peak resident jobs track the arrival/completion balance, not
/// the trace length.
fn bench_trace_stream(c: &mut Criterion) {
    let fast = std::env::var("COOPCKPT_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
    let jobs = if fast { 10_000 } else { 100_000 };
    // Short jobs on a tight arrival clock: 100k jobs fit inside ~35
    // simulated days with O(100) resident at any instant.
    let spec = format!(
        "synthetic:jobs={jobs},seed=1,projects=16,max_nodes=512,\
         mean_walltime_hours=1,max_walltime_hours=4,mean_interarrival_secs=30"
    );
    let sc = Scenario {
        workload: WorkloadSource::Trace(spec),
        span: Duration::from_days(45.0),
        ..Scenario::default()
    };
    let config = sc.into_config().expect("trace scenario compiles");
    let mut group = c.benchmark_group("e2e");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("trace_100k_jobs", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_simulation(&config, seed).peak_live_jobs)
        });
    });
    group.finish();
}

/// Campaign throughput: a small suite through the work-stealing runner,
/// cold (fresh operating-point cache per iteration — every point
/// simulates) vs warm (one shared cache — after the first iteration every
/// point is a memoized lookup). The gap is the value of the
/// operating-point cache; the warm number is the runner's pure overhead.
fn bench_campaign(c: &mut Criterion) {
    use coopckpt::campaign::{run_suite, CampaignOptions, Suite};
    use coopckpt::montecarlo::OpPointCache;
    use std::sync::Arc;

    let suite = Suite::parse(
        r#"{
            "name": "bench",
            "base": {
                "platform": {"preset": "cielo", "bandwidth_gbps": 40},
                "span_days": 0.25,
                "samples": 1,
                "seed": 1
            },
            "grid": {
                "strategy": ["least-waste", "ordered-daly", "oblivious-daly"],
                "bandwidth_gbps": [40, 160]
            }
        }"#,
    )
    .expect("bench suite parses");

    let mut group = c.benchmark_group("campaign/6pt_quarter_day");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let opts = CampaignOptions {
                threads: 0,
                cache: None,
                op_cache: Some(Arc::new(OpPointCache::new())),
            };
            black_box(run_suite(&suite, &opts).expect("suite runs").entries.len())
        });
    });
    let shared = Arc::new(OpPointCache::new());
    group.bench_function("warm", |b| {
        b.iter(|| {
            let opts = CampaignOptions {
                threads: 0,
                cache: None,
                op_cache: Some(Arc::clone(&shared)),
            };
            black_box(run_suite(&suite, &opts).expect("suite runs").entries.len())
        });
    });
    group.finish();
}

/// Tentpole gate for the two-level pool: a *one-point* suite with a big
/// sample count, run through the campaign runner. `pooled` (threads = 0)
/// lets every worker steal sample chunks from the single point;
/// `scenario_sharded` (threads = 1) is what scenario-level-only sharding
/// gives a lone point — one worker, samples in series. On a multi-core
/// machine `bench_baseline check` requires `pooled` to beat
/// `scenario_sharded` (the two coincide on a single core).
fn bench_suite_single_big_point(c: &mut Criterion) {
    use coopckpt::campaign::{run_suite, CampaignOptions, Suite};
    use coopckpt::montecarlo::OpPointCache;
    use std::sync::Arc;

    let fast = std::env::var("COOPCKPT_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
    let samples = if fast { 32 } else { 128 };
    let suite = Suite::parse(&format!(
        r#"{{
            "name": "bigpoint",
            "base": {{
                "platform": {{"preset": "cielo", "bandwidth_gbps": 40}},
                "span_days": 0.25,
                "samples": {samples},
                "seed": 7
            }},
            "grid": {{"strategy": ["least-waste"]}}
        }}"#,
    ))
    .expect("big-point suite parses");

    let mut group = c.benchmark_group("e2e/suite_single_big_point");
    group.sample_size(10);
    for (label, threads) in [("pooled", 0usize), ("scenario_sharded", 1usize)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                // A fresh operating-point cache per iteration, so every
                // iteration really simulates all samples.
                let opts = CampaignOptions {
                    threads,
                    cache: None,
                    op_cache: Some(Arc::new(OpPointCache::new())),
                };
                black_box(run_suite(&suite, &opts).expect("suite runs").entries.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_cancel_heavy,
    bench_pfs,
    bench_lambda_solver,
    bench_failure_trace,
    bench_end_to_end,
    bench_trace_stream,
    bench_campaign,
    bench_suite_single_big_point
);
criterion_main!(benches);
