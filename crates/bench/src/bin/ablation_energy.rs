//! Ablation: the time-vs-energy checkpoint trade-off (Aupy et al.,
//! *Optimal Checkpointing Period: Time vs. Energy*).
//!
//! Sweeps the checkpoint/compute power ratio `ρ_ckpt / ρ_comp` at the
//! scarce-bandwidth Cielo operating point and reports the **energy** waste
//! ratio per strategy — the only sweep whose metric is energy, not time.
//! The base power model is the Cielo preset; each point rescales the
//! checkpoint and recovery draws.
//!
//! The whole experiment is one declarative [`Scenario`] with a
//! `power-ratio` sweep axis, executed by the same `run_scenario` front
//! door as the CLI — the equivalent file is
//! `{"platform": {"preset": "cielo", "bandwidth_gbps": 40}, "power":
//! "cielo", "sweep": {"axis": "power-ratio"}}`.
//!
//! The run ends with the closed-form check behind the trade-off: the
//! energy-optimal period `P_E = P_Daly · √(ρ_ckpt/ρ_comp)` falls below
//! the Young/Daly period when checkpoint writes are energy-cheap and
//! stretches beyond it on I/O-heavy platforms.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_energy [-- --json out.json]
//! ```

use coopckpt::experiments::run_scenario;
use coopckpt::prelude::*;
use coopckpt_bench::{banner, cielo_scenario, emit_report, BenchScale};
use coopckpt_model::{daly_period_energy, young_daly_period};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: time-vs-energy trade-off (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let mut scenario = cielo_scenario(40.0, &scale)
        .with_name("ablation-energy")
        .with_power(PowerModel::cielo());
    scenario.sweep = Some(Sweep {
        axis: SweepAxis::PowerRatio,
        values: vec![0.25, 0.5, 1.0, 2.0, 4.0],
    });
    let report = run_scenario(&scenario).expect("bench scenario is valid");
    emit_report(&report);

    // The acceptance claim: at a fixed (time-optimal) period, pricier
    // checkpoint writes strictly raise the energy waste.
    let sweep = report
        .sections
        .iter()
        .find(|s| s.name == "sweep")
        .expect("sweep reports carry a sweep section");
    let mean_of = |series: &str, x: f64| -> f64 {
        sweep
            .rows
            .iter()
            .find(|row| match (&row[0], &row[1]) {
                (Cell::Float { value, .. }, Cell::Text(s)) => *value == x && s == series,
                _ => false,
            })
            .and_then(|row| match &row[2] {
                Cell::Float { value, .. } => Some(*value),
                _ => None,
            })
            .expect("sweep covers this point")
    };
    let cheap = mean_of("Least-Waste", 0.25);
    let dear = mean_of("Least-Waste", 4.0);
    println!(
        "\nLeast-Waste energy waste: ratio 0.25 {cheap:.4} -> ratio 4 {dear:.4} ({})",
        if dear > cheap {
            "I/O draw dominates the energy bill"
        } else {
            "NO INCREASE — unexpected at this operating point"
        }
    );

    // The closed form behind the sweep: how far the energy-optimal period
    // strays from Young/Daly at each power ratio (EAP-like class: 8 TB
    // checkpoint at 40 GB/s on 4096 of 17888 two-year-MTBF nodes).
    let c = Duration::from_secs(200.0);
    let mu = coopckpt_workload::cielo().job_mtbf(4096);
    let p_daly = young_daly_period(c, mu);
    println!("\nclosed form (C = {c}, job MTBF = {mu}):");
    println!("  P_Daly (time-optimal) = {p_daly}");
    for ratio in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let p_e = daly_period_energy(c, mu, 220.0 * ratio, 220.0);
        println!(
            "  ratio {ratio:>4}: P_E = {p_e} ({:.2}x P_Daly)",
            p_e.as_secs() / p_daly.as_secs()
        );
    }
}
