//! Records and checks the repo's tracked bench baselines.
//!
//! The vendored criterion harness dumps raw results with
//! `cargo bench -p coopckpt-bench --bench micro -- --save-json current.json`; this tool
//! then either *records* them as the committed baselines or *checks* them
//! against the committed ones:
//!
//! * `bench_baseline write <current.json>` — splits the results into
//!   `BENCH_des.json` (kernel micro groups: `des/`, `io/`, `theory/`,
//!   `failure/`) and `BENCH_e2e.json` (end-to-end groups: `sim/`,
//!   `campaign/`) at the repo root, stamping the current commit.
//! * `bench_baseline check <current.json>` — fails (exit 1) when any `des/`
//!   benchmark regressed more than `COOPCKPT_BENCH_TOLERANCE` (default
//!   0.25, i.e. 25%) against the committed `BENCH_des.json`, when the
//!   calendar queue's `des/event_queue_cancel_heavy` is not at least
//!   `COOPCKPT_BENCH_MIN_SPEEDUP` (default 5×) faster than its
//!   `…_cancel_heavy_heap` oracle companion *from the same run* — the
//!   same-run ratio keeps the ≥5× gate machine-independent — or when the
//!   two-level pool's `e2e/suite_single_big_point/pooled` does not beat
//!   its `…/scenario_sharded` companion by the core-count-scaled floor
//!   (2× at ≥4 cores, 1.2× at 2–3, skipped on a single core; override
//!   with `COOPCKPT_BENCH_MIN_POOL_SPEEDUP`).
//!
//! Baselines record the median and iteration count per benchmark; medians
//! on CI runners are noisy, so the regression tolerance is deliberately
//! generous and only the in-run speedup ratio is held tight.

use std::path::{Path, PathBuf};
use std::process::Command;

use coopckpt::json::Json;

/// A parsed `(name, median_ns, iters)` triple.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    name: String,
    median_ns: f64,
    iters: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: bench_baseline <write|check> <current-results.json>";
    let (mode, path) = match (args.get(1), args.get(2)) {
        (Some(mode), Some(path)) => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let current =
        load_entries(Path::new(path)).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
    match mode {
        "write" => write_baselines(&current),
        "check" => check_baselines(&current),
        other => {
            eprintln!("unknown mode '{other}'; {usage}");
            std::process::exit(2);
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_baseline: {msg}");
    std::process::exit(1);
}

/// The repo root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn load_entries(path: &Path) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let json = Json::parse(&text).map_err(|e| e.to_string())?;
    parse_entries(&json)
}

fn parse_entries(json: &Json) -> Result<Vec<Entry>, String> {
    let results = json
        .get("results")
        .and_then(Json::as_array)
        .ok_or("missing 'results' array")?;
    results
        .iter()
        .map(|r| {
            Ok(Entry {
                name: r
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("result missing 'name'")?
                    .to_string(),
                median_ns: r
                    .get("median_ns")
                    .and_then(Json::as_f64)
                    .ok_or("result missing 'median_ns'")?,
                iters: r
                    .get("iters")
                    .and_then(Json::as_u64)
                    .ok_or("result missing 'iters'")?,
            })
        })
        .collect()
}

/// Kernel micro-bench groups land in `BENCH_des.json`; end-to-end groups
/// (full engine runs, trace streaming, campaign sweeps) in
/// `BENCH_e2e.json`.
fn is_e2e(name: &str) -> bool {
    name.starts_with("sim/") || name.starts_with("campaign/") || name.starts_with("e2e/")
}

fn git_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn baseline_json(commit: &str, entries: &[Entry]) -> String {
    let mut out = format!("{{\n  \"commit\": \"{commit}\",\n  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"iters\": {}}}{sep}\n",
            e.name, e.median_ns, e.iters
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn write_baselines(current: &[Entry]) {
    let commit = git_commit();
    let root = repo_root();
    let (e2e, des): (Vec<Entry>, Vec<Entry>) =
        current.iter().cloned().partition(|e| is_e2e(&e.name));
    for (file, entries) in [("BENCH_des.json", &des), ("BENCH_e2e.json", &e2e)] {
        let path = root.join(file);
        std::fs::write(&path, baseline_json(&commit, entries))
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        println!(
            "{}: {} benchmarks @ {commit}",
            path.display(),
            entries.len()
        );
    }
}

/// Gate-3 floor for the two-level pool, by core count of the machine
/// that ran (and is now checking) the bench. `None` = gate skipped: a
/// single core has no parallelism to exploit. Two or three cores leave
/// little headroom after scheduling overhead; four and up must show the
/// full 2× the tentpole promises.
fn pool_speedup_floor(cores: usize) -> Option<f64> {
    match cores {
        0 | 1 => None,
        2 | 3 => Some(1.2),
        _ => Some(2.0),
    }
}

fn env_f64(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One comparison-table row: the gated `des/` groups get an ok/FAIL
/// verdict, the end-to-end groups are informational (`info`), and
/// benchmarks present on only one side are flagged without failing
/// unless the baseline side is gated.
struct TableRow {
    name: String,
    baseline_ns: Option<f64>,
    current_ns: Option<f64>,
    verdict: &'static str,
}

fn delta_pct(baseline_ns: f64, current_ns: f64) -> f64 {
    (current_ns / baseline_ns - 1.0) * 100.0
}

fn render_table(rows: &[TableRow]) -> String {
    let mut out = format!(
        "{:<44} {:>14} {:>14} {:>8}  {}\n",
        "benchmark", "baseline ns", "current ns", "delta", "verdict"
    );
    let fmt_ns = |v: Option<f64>| match v {
        Some(ns) => format!("{ns:.0}"),
        None => "-".to_string(),
    };
    for r in rows {
        let delta = match (r.baseline_ns, r.current_ns) {
            (Some(b), Some(c)) => format!("{:+.1}%", delta_pct(b, c)),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<44} {:>14} {:>14} {:>8}  {}\n",
            r.name,
            fmt_ns(r.baseline_ns),
            fmt_ns(r.current_ns),
            delta,
            r.verdict
        ));
    }
    out
}

fn check_baselines(current: &[Entry]) {
    let tolerance = env_f64("COOPCKPT_BENCH_TOLERANCE", 0.25);
    let min_speedup = env_f64("COOPCKPT_BENCH_MIN_SPEEDUP", 5.0);
    let root = repo_root();
    let baseline_path = root.join("BENCH_des.json");
    let baseline = load_entries(&baseline_path)
        .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", baseline_path.display())));
    // The e2e baselines are informational context only — wall-clock runs
    // are too machine-dependent to gate — so a missing file is fine.
    let e2e_baseline = load_entries(&root.join("BENCH_e2e.json")).unwrap_or_default();

    let mut failures = Vec::new();
    let mut rows = Vec::new();

    // Gate 1: no des/ benchmark may regress past the tolerance.
    for base in baseline.iter().filter(|e| e.name.starts_with("des/")) {
        let Some(cur) = current.iter().find(|e| e.name == base.name) else {
            rows.push(TableRow {
                name: base.name.clone(),
                baseline_ns: Some(base.median_ns),
                current_ns: None,
                verdict: "MISSING",
            });
            failures.push(format!(
                "{}: present in baseline but missing from the current run",
                base.name
            ));
            continue;
        };
        let over = delta_pct(base.median_ns, cur.median_ns) > tolerance * 100.0;
        rows.push(TableRow {
            name: base.name.clone(),
            baseline_ns: Some(base.median_ns),
            current_ns: Some(cur.median_ns),
            verdict: if over { "FAIL" } else { "ok" },
        });
        if over {
            failures.push(format!(
                "{}: {:.0} ns is {:.0}% over the baseline {:.0} ns (tolerance {:.0}%)",
                base.name,
                cur.median_ns,
                delta_pct(base.median_ns, cur.median_ns),
                base.median_ns,
                tolerance * 100.0
            ));
        }
    }

    // Informational rows: ungated kernel groups, then e2e groups, then
    // current benchmarks with no committed baseline yet.
    for base in baseline.iter().filter(|e| !e.name.starts_with("des/")) {
        rows.push(TableRow {
            name: base.name.clone(),
            baseline_ns: Some(base.median_ns),
            current_ns: current
                .iter()
                .find(|e| e.name == base.name)
                .map(|e| e.median_ns),
            verdict: "info",
        });
    }
    for base in &e2e_baseline {
        rows.push(TableRow {
            name: base.name.clone(),
            baseline_ns: Some(base.median_ns),
            current_ns: current
                .iter()
                .find(|e| e.name == base.name)
                .map(|e| e.median_ns),
            verdict: "info",
        });
    }
    let known = |name: &str| {
        baseline.iter().any(|e| e.name == name) || e2e_baseline.iter().any(|e| e.name == name)
    };
    for cur in current.iter().filter(|e| !known(&e.name)) {
        rows.push(TableRow {
            name: cur.name.clone(),
            baseline_ns: None,
            current_ns: Some(cur.median_ns),
            verdict: "new",
        });
    }
    print!("{}", render_table(&rows));

    // Gate 2: the calendar queue must hold its speedup over the heap
    // oracle, measured within the current run (machine-independent).
    let calendar = current
        .iter()
        .find(|e| e.name == "des/event_queue_cancel_heavy");
    let heap = current
        .iter()
        .find(|e| e.name == "des/event_queue_cancel_heavy_heap");
    match (calendar, heap) {
        (Some(cal), Some(heap)) => {
            let speedup = heap.median_ns / cal.median_ns;
            println!(
                "cancel-heavy speedup: {speedup:.1}x (calendar {:.0} ns vs heap {:.0} ns, floor {min_speedup}x)",
                cal.median_ns, heap.median_ns
            );
            if speedup < min_speedup {
                failures.push(format!(
                    "calendar queue is only {speedup:.1}x faster than the heap oracle on \
                     des/event_queue_cancel_heavy (required ≥{min_speedup}x)"
                ));
            }
        }
        _ => failures.push(
            "current run is missing des/event_queue_cancel_heavy and/or its _heap companion"
                .to_string(),
        ),
    }

    // Gate 3: the two-level work-sharing pool must make a single big
    // point faster than scenario-only sharding, measured within the
    // current run. The required speedup scales with the *checking*
    // machine's core count — the same machine that just ran the bench —
    // because a one-core runner cannot beat serial execution at all.
    let pooled = current
        .iter()
        .find(|e| e.name == "e2e/suite_single_big_point/pooled");
    let sharded = current
        .iter()
        .find(|e| e.name == "e2e/suite_single_big_point/scenario_sharded");
    match (pooled, sharded) {
        (Some(pooled), Some(sharded)) => {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let floor = std::env::var("COOPCKPT_BENCH_MIN_POOL_SPEEDUP")
                .ok()
                .and_then(|v| v.parse().ok())
                .map_or_else(|| pool_speedup_floor(cores), Some);
            let speedup = sharded.median_ns / pooled.median_ns;
            match floor {
                Some(floor) => {
                    println!(
                        "single-big-point pool speedup: {speedup:.1}x (pooled {:.0} ns vs \
                         scenario-sharded {:.0} ns, floor {floor}x on {cores} cores)",
                        pooled.median_ns, sharded.median_ns
                    );
                    if speedup < floor {
                        failures.push(format!(
                            "two-level pool is only {speedup:.1}x faster than scenario-only \
                             sharding on e2e/suite_single_big_point (required ≥{floor}x on \
                             {cores} cores)"
                        ));
                    }
                }
                None => println!(
                    "single-big-point pool speedup: {speedup:.1}x \
                     (single core — pool gate skipped)"
                ),
            }
        }
        _ => failures.push(
            "current run is missing e2e/suite_single_big_point/pooled and/or its \
             scenario_sharded companion"
                .to_string(),
        ),
    }

    if failures.is_empty() {
        println!("bench_baseline: all gates passed");
    } else {
        for f in &failures {
            eprintln!("bench_baseline: {f}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_harness_schema() {
        let json = Json::parse(
            r#"{"results": [
                {"name": "des/a", "median_ns": 1500, "iters": 10},
                {"name": "sim/b", "median_ns": 2.5e6, "iters": 3}
            ]}"#,
        )
        .unwrap();
        let entries = parse_entries(&json).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "des/a");
        assert_eq!(entries[0].median_ns, 1500.0);
        assert_eq!(entries[1].iters, 3);
    }

    #[test]
    fn splits_groups_between_des_and_e2e_files() {
        for (name, e2e) in [
            ("des/event_queue_10k", false),
            ("io/pfs_64_streams", false),
            ("theory/lower_bound_apex", false),
            ("failure/trace_60d_cielo", false),
            ("sim/7day_cielo_40gbps/least-waste", true),
            ("campaign/6pt_quarter_day/cold", true),
            ("e2e/trace_100k_jobs", true),
            ("e2e/suite_single_big_point/pooled", true),
        ] {
            assert_eq!(is_e2e(name), e2e, "{name}");
        }
    }

    #[test]
    fn pool_gate_floor_scales_with_core_count() {
        assert_eq!(pool_speedup_floor(1), None, "one core cannot speed up");
        assert_eq!(pool_speedup_floor(2), Some(1.2));
        assert_eq!(pool_speedup_floor(3), Some(1.2));
        assert_eq!(pool_speedup_floor(4), Some(2.0));
        assert_eq!(pool_speedup_floor(64), Some(2.0));
    }

    #[test]
    fn comparison_table_covers_every_row_shape() {
        let rows = vec![
            TableRow {
                name: "des/event_queue_10k".into(),
                baseline_ns: Some(1000.0),
                current_ns: Some(1100.0),
                verdict: "ok",
            },
            TableRow {
                name: "sim/7day_cielo".into(),
                baseline_ns: Some(2.0e9),
                current_ns: None,
                verdict: "info",
            },
            TableRow {
                name: "des/brand_new".into(),
                baseline_ns: None,
                current_ns: Some(42.0),
                verdict: "new",
            },
        ];
        let table = render_table(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "header + one line per row:\n{table}");
        assert!(lines[0].contains("baseline ns") && lines[0].contains("delta"));
        assert!(lines[1].contains("+10.0%") && lines[1].ends_with("ok"));
        assert!(lines[2].contains('-') && lines[2].ends_with("info"));
        assert!(lines[3].ends_with("new"));
        assert!((delta_pct(1000.0, 800.0) + 20.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_json_round_trips() {
        let entries = vec![
            Entry {
                name: "des/a".into(),
                median_ns: 123.0,
                iters: 42,
            },
            Entry {
                name: "des/b".into(),
                median_ns: 4.5e9,
                iters: 1,
            },
        ];
        let text = baseline_json("abc1234", &entries);
        let json = Json::parse(&text).unwrap();
        assert_eq!(json.get("commit").and_then(Json::as_str), Some("abc1234"));
        assert_eq!(parse_entries(&json).unwrap(), entries);
    }
}
