//! Ablation: multi-level checkpoint storage hierarchies (paper Section 8).
//!
//! Generalizes `ablation_burst_buffer` from one tier to an N-deep stack
//! (node-local → burst buffer → campaign storage → PFS): checkpoints are
//! absorbed by the shallowest tier with space and drain tier-by-tier to
//! the PFS in the background; the job blocks only for the absorb, and
//! durability arrives when the final drain lands. The sweep measures the
//! waste ratio against hierarchy depth at the scarce-bandwidth operating
//! point of Figure 2, including the level-aware `Tiered` discipline that
//! skips the PFS token for absorbable checkpoints.
//!
//! The whole experiment is one declarative [`Scenario`] with a `tiers`
//! sweep axis, executed by the same [`run_scenario`] front door as the
//! CLI — the equivalent file is
//! `{"platform": {"preset": "cielo", "bandwidth_gbps": 40}, "sweep":
//! {"axis": "tiers", "values": [0, 1, 2, 3]}}`.
//!
//! The run ends by checking the headline claim: at equal PFS bandwidth, a
//! 3-tier hierarchy strictly reduces the blocking `Ordered-Daly` waste
//! relative to the PFS-only baseline.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_multilevel [-- --json out.json]
//! ```

use coopckpt::experiments::run_scenario;
use coopckpt::prelude::*;
use coopckpt_bench::{banner, cielo_scenario, emit_report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: multi-level storage hierarchy (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let mut scenario = cielo_scenario(40.0, &scale).with_name("ablation-multilevel");
    scenario.sweep = Some(Sweep {
        axis: SweepAxis::Tiers,
        values: vec![0.0, 1.0, 2.0, 3.0],
    });
    let report = run_scenario(&scenario).expect("bench scenario is valid");
    emit_report(&report);

    // The acceptance claim: 3 tiers beat PFS-only for the blocking
    // discipline at equal PFS bandwidth.
    let sweep = report
        .sections
        .iter()
        .find(|s| s.name == "sweep")
        .expect("sweep reports carry a sweep section");
    let mean_of = |series: &str, x: f64| -> f64 {
        sweep
            .rows
            .iter()
            .find(|row| match (&row[0], &row[1]) {
                (Cell::Float { value, .. }, Cell::Text(s)) => *value == x && s == series,
                _ => false,
            })
            .and_then(|row| match &row[2] {
                Cell::Float { value, .. } => Some(*value),
                _ => None,
            })
            .expect("sweep covers this point")
    };
    let baseline = mean_of("Ordered-Daly", 0.0);
    let three = mean_of("Ordered-Daly", 3.0);
    println!(
        "\nOrdered-Daly waste: PFS-only {baseline:.4} -> 3 tiers {three:.4} ({})",
        if three < baseline {
            "hierarchy wins"
        } else {
            "NO IMPROVEMENT — unexpected at this operating point"
        }
    );
    println!("(inter-tier drains never touch the PFS; only the final drain contends)");
}
