//! Ablation: multi-level checkpoint storage hierarchies (paper Section 8).
//!
//! Generalizes `ablation_burst_buffer` from one tier to an N-deep stack
//! (node-local → burst buffer → campaign storage → PFS): checkpoints are
//! absorbed by the shallowest tier with space and drain tier-by-tier to
//! the PFS in the background; the job blocks only for the absorb, and
//! durability arrives when the final drain lands. The sweep measures the
//! waste ratio against hierarchy depth at the scarce-bandwidth operating
//! point of Figure 2, including the level-aware `Tiered` discipline that
//! skips the PFS token for absorbable checkpoints.
//!
//! The run ends by checking the headline claim: at equal PFS bandwidth, a
//! 3-tier hierarchy strictly reduces the blocking `Ordered-Daly` waste
//! relative to the PFS-only baseline.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_multilevel
//! ```

use coopckpt::experiments::waste_vs_tier_count;
use coopckpt::prelude::*;
use coopckpt_bench::{banner, emit, sweep_table, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: multi-level storage hierarchy (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let classes = coopckpt_workload::classes_for(&platform);
    let template = SimConfig::new(platform, classes, Strategy::least_waste()).with_span(scale.span);

    let strategies = [
        Strategy::oblivious(CheckpointPolicy::Daly),
        Strategy::ordered(CheckpointPolicy::Daly),
        Strategy::ordered_nb(CheckpointPolicy::Daly),
        Strategy::least_waste(),
        Strategy::tiered(CheckpointPolicy::Daly),
    ];
    let tier_counts = [0usize, 1, 2, 3];
    let points = waste_vs_tier_count(&template, &tier_counts, &strategies, &scale.mc());
    emit(&sweep_table("tiers", &points));

    // The acceptance claim: 3 tiers beat PFS-only for the blocking
    // discipline at equal PFS bandwidth.
    let mean_of = |series: &str, x: f64| {
        points
            .iter()
            .find(|p| p.series == series && p.x == x)
            .map(|p| p.stats.mean)
            .expect("sweep covers this point")
    };
    let baseline = mean_of("Ordered-Daly", 0.0);
    let three = mean_of("Ordered-Daly", 3.0);
    println!(
        "\nOrdered-Daly waste: PFS-only {baseline:.4} -> 3 tiers {three:.4} ({})",
        if three < baseline {
            "hierarchy wins"
        } else {
            "NO IMPROVEMENT — unexpected at this operating point"
        }
    );
    println!("(inter-tier drains never touch the PFS; only the final drain contends)");
}
