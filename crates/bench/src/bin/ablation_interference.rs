//! Ablation: the interference model (paper footnote 2).
//!
//! The paper assumes a *linear* model — constant global throughput shared
//! proportionally to job size — and notes a "more adversarial interference
//! model can be substituted". This ablation quantifies how the strategy
//! ranking responds when contention carries a real cost
//! ([`DegradedShare`](coopckpt_io::DegradedShare), global throughput
//! `∝ k^(−α)`) or when the file system ignores job size
//! ([`EqualShare`](coopckpt_io::EqualShare)).
//!
//! Expectation: token-based strategies (Ordered*, Least-Waste) are immune —
//! they keep a single stream active — while Oblivious degrades further,
//! widening the cooperative advantage.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_interference
//! ```

use coopckpt::prelude::*;
use coopckpt::sim::InterferenceKind;
use coopckpt_bench::{banner, emit, BenchScale};
use coopckpt_stats::Table;

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: interference model (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let classes = coopckpt_workload::classes_for(&platform);
    let models = [
        ("linear", InterferenceKind::Linear),
        ("degraded(0.2)", InterferenceKind::Degraded(0.2)),
        ("degraded(0.5)", InterferenceKind::Degraded(0.5)),
        ("equal-share", InterferenceKind::Equal),
    ];

    let mut t = Table::new([
        "strategy",
        "linear",
        "degraded(0.2)",
        "degraded(0.5)",
        "equal-share",
    ]);
    for strategy in Strategy::all_seven() {
        let mut cells = vec![strategy.name()];
        for (_, kind) in &models {
            let cfg = SimConfig::new(platform.clone(), classes.clone(), strategy)
                .with_span(scale.span)
                .with_interference(*kind);
            cells.push(format!("{:.4}", run_many(&cfg, &scale.mc()).mean()));
        }
        t.row(cells);
    }
    emit(&t);
    println!(
        "\n(waste ratio; token-based strategies serialize I/O and are insensitive to the model)"
    );
}
