//! Ablation: the interference model (paper footnote 2).
//!
//! The paper assumes a *linear* model — constant global throughput shared
//! proportionally to job size — and notes a "more adversarial interference
//! model can be substituted". This ablation quantifies how the strategy
//! ranking responds when contention carries a real cost
//! ([`DegradedShare`](coopckpt_io::DegradedShare), global throughput
//! `∝ k^(−α)`) or when the file system ignores job size
//! ([`EqualShare`](coopckpt_io::EqualShare)).
//!
//! Expectation: token-based strategies (Ordered*, Least-Waste) are immune —
//! they keep a single stream active — while Oblivious degrades further,
//! widening the cooperative advantage.
//!
//! Each variant is the shared base [`Scenario`] with only its interference
//! mode swapped, and results flow through the same [`Report`] writers as
//! the CLI (`--csv <path>` / `--json <path>`).
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_interference [-- --json out.json]
//! ```

use coopckpt::prelude::*;
use coopckpt::sim::InterferenceKind;
use coopckpt_bench::{banner, cielo_scenario, emit_report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: interference model (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let base = cielo_scenario(40.0, &scale).with_name("ablation-interference");
    let models = [
        InterferenceKind::Linear,
        InterferenceKind::Degraded(0.2),
        InterferenceKind::Degraded(0.5),
        InterferenceKind::Equal,
    ];

    let mut report = Report::new("ablation_interference", Some(base.clone()));
    report
        .note("waste ratio; token-based strategies serialize I/O and are insensitive to the model");
    let table = report.section(
        "waste_by_model",
        ["strategy".to_string()]
            .into_iter()
            .chain(models.iter().map(InterferenceKind::spec_name)),
    );
    for strategy in Strategy::all_seven() {
        let mut cells = vec![Cell::text(strategy.name())];
        for kind in &models {
            let sc = base
                .clone()
                .with_strategy(strategy)
                .with_interference(*kind);
            let config = sc.into_config().expect("bench scenario is valid");
            cells.push(Cell::f4(run_many(&config, &sc.mc()).mean()));
        }
        table.row(cells);
    }
    emit_report(&report);
}
