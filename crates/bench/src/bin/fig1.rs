//! Figure 1 of the paper: waste ratio as a function of the aggregate
//! system bandwidth (40 → 160 GB/s) for the seven strategies and the
//! theoretical lower bound; LANL APEX workload on Cielo, 2-year node MTBF.
//!
//! ```sh
//! COOPCKPT_SAMPLES=1000 cargo run --release -p coopckpt-bench --bin fig1 [-- --csv fig1.csv]
//! ```

use coopckpt::experiments::waste_vs_bandwidth;
use coopckpt::prelude::*;
use coopckpt_bench::{banner, emit, sweep_table, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Figure 1: waste ratio vs system bandwidth (Cielo, node MTBF 2 y)",
        &scale,
    );

    let platform = coopckpt_workload::cielo(); // node MTBF = 2 years
    let classes = coopckpt_workload::classes_for(&platform);
    let template = SimConfig::new(platform, classes, Strategy::least_waste()).with_span(scale.span);

    let bandwidths = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0];
    let points = waste_vs_bandwidth(&template, &bandwidths, &Strategy::all_seven(), &scale.mc());
    emit(&sweep_table("bandwidth_gbps", &points));
}
