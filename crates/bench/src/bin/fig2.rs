//! Figure 2 of the paper: waste ratio as a function of node MTBF
//! (2 → 50 years) at a fixed, scarce 40 GB/s of aggregate bandwidth;
//! LANL APEX workload on Cielo.
//!
//! ```sh
//! COOPCKPT_SAMPLES=1000 cargo run --release -p coopckpt-bench --bin fig2 [-- --csv fig2.csv]
//! ```

use coopckpt::experiments::waste_vs_mtbf;
use coopckpt::prelude::*;
use coopckpt_bench::{banner, emit, sweep_table, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Figure 2: waste ratio vs node MTBF (Cielo, 40 GB/s)",
        &scale,
    );

    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let classes = coopckpt_workload::classes_for(&platform);
    let template = SimConfig::new(platform, classes, Strategy::least_waste()).with_span(scale.span);

    let mtbf_years = [2.0, 4.0, 7.0, 10.0, 20.0, 35.0, 50.0];
    let points = waste_vs_mtbf(&template, &mtbf_years, &Strategy::all_seven(), &scale.mc());
    emit(&sweep_table("node_mtbf_years", &points));
}
