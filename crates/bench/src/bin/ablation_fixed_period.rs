//! Ablation: the fixed checkpoint period.
//!
//! The paper's `Fixed` variants use the common "once per hour" heuristic.
//! This ablation sweeps the period (0.5 h – 4 h) under both a blocking
//! (Oblivious) and a non-blocking (Ordered-NB) discipline, bracketing them
//! with the Daly policy, to show (a) how wrong the hourly heuristic is at
//! scarce bandwidth, and (b) how the non-blocking discipline flattens the
//! penalty (Figure 2's "Ordered-NB-Fixed performs comparably" observation).
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_fixed_period
//! ```

use coopckpt::prelude::*;
use coopckpt_bench::{banner, emit, BenchScale};
use coopckpt_stats::Table;

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: fixed checkpoint period (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let classes = coopckpt_workload::classes_for(&platform);

    let policies: Vec<(String, CheckpointPolicy)> = [0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&h| {
            (
                format!("fixed {h}h"),
                CheckpointPolicy::Fixed(Duration::from_hours(h)),
            )
        })
        .chain(std::iter::once((
            "daly".to_string(),
            CheckpointPolicy::Daly,
        )))
        .collect();

    let mut t = Table::new(["period", "Oblivious", "Ordered-NB"]);
    for (label, policy) in &policies {
        let mut cells = vec![label.clone()];
        for strategy in [Strategy::oblivious(*policy), Strategy::ordered_nb(*policy)] {
            let cfg =
                SimConfig::new(platform.clone(), classes.clone(), strategy).with_span(scale.span);
            cells.push(format!("{:.4}", run_many(&cfg, &scale.mc()).mean()));
        }
        t.row(cells);
    }
    emit(&t);
    println!("\n(waste ratio; the Daly row is the adaptive reference)");
}
