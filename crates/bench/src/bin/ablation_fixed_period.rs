//! Ablation: the fixed checkpoint period.
//!
//! The paper's `Fixed` variants use the common "once per hour" heuristic.
//! This ablation sweeps the period (0.5 h – 4 h) under both a blocking
//! (Oblivious) and a non-blocking (Ordered-NB) discipline, bracketing them
//! with the Daly policy, to show (a) how wrong the hourly heuristic is at
//! scarce bandwidth, and (b) how the non-blocking discipline flattens the
//! penalty (Figure 2's "Ordered-NB-Fixed performs comparably" observation).
//!
//! Each variant is the shared base [`Scenario`] with only its strategy
//! swapped, and results flow through the same [`Report`] writers as the
//! CLI (`--csv <path>` / `--json <path>`).
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_fixed_period [-- --json out.json]
//! ```

use coopckpt::prelude::*;
use coopckpt_bench::{banner, cielo_scenario, emit_report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: fixed checkpoint period (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let base = cielo_scenario(40.0, &scale).with_name("ablation-fixed-period");
    let policies: Vec<(String, CheckpointPolicy)> = [0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&h| {
            (
                format!("fixed {h}h"),
                CheckpointPolicy::Fixed(Duration::from_hours(h)),
            )
        })
        .chain(std::iter::once((
            "daly".to_string(),
            CheckpointPolicy::Daly,
        )))
        .collect();

    let mut report = Report::new("ablation_fixed_period", Some(base.clone()));
    report.note("waste ratio; the Daly row is the adaptive reference");
    let table = report.section("waste_by_period", ["period", "Oblivious", "Ordered-NB"]);
    for (label, policy) in &policies {
        let mut cells = vec![Cell::text(label.clone())];
        for strategy in [Strategy::oblivious(*policy), Strategy::ordered_nb(*policy)] {
            let sc = base.clone().with_strategy(strategy);
            let config = sc.into_config().expect("bench scenario is valid");
            cells.push(Cell::f4(run_many(&config, &sc.mc()).mean()));
        }
        table.row(cells);
    }
    emit_report(&report);
}
