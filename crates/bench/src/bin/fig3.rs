//! Figure 3 of the paper: the minimum aggregate file-system bandwidth each
//! strategy needs to sustain 80 % platform efficiency on the prospective
//! 7 PB / 50,000-node system, as the node MTBF varies (5 → 25 years).
//!
//! This is the most expensive figure (a bandwidth bisection per strategy
//! per MTBF point); scale it down with `COOPCKPT_SAMPLES` /
//! `COOPCKPT_SPAN_DAYS` and fewer bisection steps via
//! `COOPCKPT_BISECT_ITERS` (default 7).
//!
//! ```sh
//! COOPCKPT_SAMPLES=20 COOPCKPT_SPAN_DAYS=20 \
//!   cargo run --release -p coopckpt-bench --bin fig3 [-- --csv fig3.csv]
//! ```

use coopckpt::experiments::{min_bandwidth_for_efficiency, theory_min_bandwidth};
use coopckpt::prelude::*;
use coopckpt_bench::{banner, emit, BenchScale};
use coopckpt_stats::Table;

fn main() {
    let scale = BenchScale::from_env();
    let iters: u32 = std::env::var("COOPCKPT_BISECT_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    banner(
        "Figure 3: min bandwidth for 80% efficiency vs node MTBF (prospective system)",
        &scale,
    );

    let target = 0.80;
    let (lo, hi) = (200.0, 200_000.0); // GB/s search bracket
    let mtbf_years = [5.0, 10.0, 15.0, 20.0, 25.0];

    let mut t = Table::new(["node_mtbf_years", "series", "min_bandwidth_tbps"]);
    for &years in &mtbf_years {
        let platform = coopckpt_workload::prospective().with_node_mtbf(Duration::from_years(years));
        let classes = coopckpt_workload::classes_for(&platform);
        let template = SimConfig::new(platform.clone(), classes.clone(), Strategy::least_waste())
            .with_span(scale.span);
        for strategy in Strategy::all_seven() {
            let found = min_bandwidth_for_efficiency(
                &template,
                strategy,
                target,
                lo,
                hi,
                iters,
                &scale.mc(),
            );
            t.row([
                format!("{years}"),
                strategy.name(),
                match found {
                    Some(gbps) => format!("{:.2}", gbps / 1000.0),
                    None => format!("> {:.0}", hi / 1000.0),
                },
            ]);
        }
        let theory = theory_min_bandwidth(&platform, &classes, target, lo, hi);
        t.row([
            format!("{years}"),
            "Theoretical Model".to_string(),
            match theory {
                Some(gbps) => format!("{:.2}", gbps / 1000.0),
                None => format!("> {:.0}", hi / 1000.0),
            },
        ]);
    }
    emit(&t);
}
