//! Ablation: multi-level recovery under per-level failure classes.
//!
//! Sweeps the share of failures that are *node-local* (severity 1: the
//! victim's node-local checkpoint copy dies with it, shared tiers
//! survive) rather than system-wide, on a 3-tier Cielo stack at scarce
//! 40 GB/s. The platform failure *rate* is identical at every point —
//! only the recovery source moves: local failures read the checkpoint
//! back from the shallowest surviving tier, token-free, instead of
//! re-reading it through the contended PFS. The waste ratio falls as the
//! local share grows; `x = 0` is the paper's single-class model.
//!
//! The whole experiment is one declarative [`Scenario`] with a
//! `local-failure-share` sweep axis, executed by the same `run_scenario`
//! front door as the CLI — the equivalent file is
//! `{"platform": {"preset": "cielo", "bandwidth_gbps": 40}, "tiers": 3,
//! "sweep": {"axis": "local-failure-share"}}`.
//!
//! The run ends with the closed forms behind the sweep: per-class restore
//! costs on the tier stack, the expected restore cost of the class mix,
//! and the Eq. (3) steady-state waste with the mixed recovery term.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_recovery [-- --json out.json]
//! ```

use coopckpt::experiments::run_scenario;
use coopckpt::prelude::*;
use coopckpt_bench::{banner, cielo_scenario, emit_report, BenchScale};
use coopckpt_model::{
    class_restore_costs, expected_restore_cost, steady_state_waste_mix, young_daly_period,
};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: multi-level recovery (Cielo, 40 GB/s, 3 tiers, node MTBF 2 y)",
        &scale,
    );

    let mut scenario = cielo_scenario(40.0, &scale)
        .with_name("ablation-recovery")
        .with_tier_depth(3);
    scenario.sweep = Some(Sweep {
        axis: SweepAxis::LocalFailureShare,
        values: vec![0.0, 0.25, 0.5, 0.75, 0.9],
    });
    let report = run_scenario(&scenario).expect("bench scenario is valid");
    emit_report(&report);

    // The acceptance claim: shifting failures from system severity to
    // node-local severity (same total rate) strictly cuts the waste.
    let sweep = report
        .sections
        .iter()
        .find(|s| s.name == "sweep")
        .expect("sweep reports carry a sweep section");
    let mean_of = |series: &str, x: f64| -> f64 {
        sweep
            .rows
            .iter()
            .find(|row| match (&row[0], &row[1]) {
                (Cell::Float { value, .. }, Cell::Text(s)) => *value == x && s == series,
                _ => false,
            })
            .and_then(|row| match &row[2] {
                Cell::Float { value, .. } => Some(*value),
                _ => None,
            })
            .expect("sweep covers this point")
    };
    let all_system = mean_of("Tiered-Daly", 0.0);
    let mostly_local = mean_of("Tiered-Daly", 0.9);
    println!(
        "\nTiered-Daly waste: local share 0 {all_system:.4} -> share 0.9 {mostly_local:.4} ({})",
        if mostly_local < all_system {
            "shallow restores cut the recovery bill"
        } else {
            "NO DECREASE — unexpected at this operating point"
        }
    );

    // The closed forms behind the sweep, on the EAP-like operating point
    // (8 TB checkpoint, 4096 of 17888 two-year-MTBF nodes): per-class
    // restore costs on the geometric 3-tier stack, and Eq. (3) with the
    // mixed recovery term at the Young/Daly period.
    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let tiers = geometric_tiers(&platform, 3);
    let volume = Bytes::from_tb(8.0);
    let q = 4096.0;
    let level_bws: Vec<Bandwidth> = tiers
        .iter()
        .map(|t| {
            if t.per_writer_node {
                t.write_bw * q
            } else {
                t.write_bw
            }
        })
        .collect();
    let severities = [1usize, usize::MAX];
    let costs = class_restore_costs(volume, &level_bws, platform.pfs_bandwidth, &severities);
    let c = volume.transfer_time(platform.pfs_bandwidth);
    let mu = platform.job_mtbf(4096);
    let p = young_daly_period(c, mu);
    println!("\nclosed form (C = {c}, job MTBF = {mu}, P_Daly = {p}):");
    println!(
        "  restore costs: local -> tier 1 {:.1} s, system -> PFS {:.1} s",
        costs[0].as_secs(),
        costs[1].as_secs()
    );
    for local in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let shares = [local, 1.0 - local];
        let er = expected_restore_cost(&shares, &costs);
        let w = steady_state_waste_mix(c, p, mu, &shares, &costs);
        println!(
            "  local share {local:>4}: E[R] = {:>7.1} s, steady-state waste = {w:.4}",
            er.as_secs()
        );
    }
}
