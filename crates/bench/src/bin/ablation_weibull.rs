//! Ablation: the failure law.
//!
//! The paper injects exponential failures; real systems show Weibull
//! behaviour with shape `k < 1` (infant mortality — the paper's related
//! work \[24\], \[41\]). This ablation mean-matches Weibull traces to the exponential
//! system MTBF and compares shapes `k ∈ {0.7, 1.0, 1.5}` (k = 1 *is* the
//! exponential).
//!
//! Expectation: burstier failures (k < 1) hurt every strategy somewhat,
//! but the cooperative ranking is preserved — the heuristic does not rely
//! on the memoryless property.
//!
//! Each variant is the shared base [`Scenario`] with only its failure law
//! swapped, and results flow through the same [`Report`] writers as the
//! CLI (`--csv <path>` / `--json <path>`).
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_weibull [-- --json out.json]
//! ```

use coopckpt::prelude::*;
use coopckpt::sim::FailureModel;
use coopckpt_bench::{banner, cielo_scenario, emit_report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: failure law (Cielo, 40 GB/s, node MTBF 2 y, mean-matched)",
        &scale,
    );

    let base = cielo_scenario(40.0, &scale).with_name("ablation-weibull");
    let laws = [
        FailureModel::Weibull(0.7),
        FailureModel::Exponential,
        FailureModel::Weibull(1.5),
    ];

    let mut report = Report::new("ablation_weibull", Some(base.clone()));
    report.note("waste ratio; k=1 equals the exponential law");
    let table = report.section(
        "waste_by_law",
        ["strategy".to_string()]
            .into_iter()
            .chain(laws.iter().map(FailureModel::spec_name)),
    );
    for strategy in Strategy::all_seven() {
        let mut cells = vec![Cell::text(strategy.name())];
        for law in &laws {
            let sc = base.clone().with_strategy(strategy).with_failures(*law);
            let config = sc.into_config().expect("bench scenario is valid");
            cells.push(Cell::f4(run_many(&config, &sc.mc()).mean()));
        }
        table.row(cells);
    }
    emit_report(&report);
}
