//! Ablation: the failure law.
//!
//! The paper injects exponential failures; real systems show Weibull
//! behaviour with shape `k < 1` (infant mortality — the paper's related
//! work \[24\], \[41\]). This ablation mean-matches Weibull traces to the exponential
//! system MTBF and compares shapes `k ∈ {0.7, 1.0, 1.5}` (k = 1 *is* the
//! exponential).
//!
//! Expectation: burstier failures (k < 1) hurt every strategy somewhat,
//! but the cooperative ranking is preserved — the heuristic does not rely
//! on the memoryless property.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_weibull
//! ```

use coopckpt::prelude::*;
use coopckpt::sim::FailureModel;
use coopckpt_bench::{banner, emit, BenchScale};
use coopckpt_stats::Table;

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: failure law (Cielo, 40 GB/s, node MTBF 2 y, mean-matched)",
        &scale,
    );

    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let classes = coopckpt_workload::classes_for(&platform);
    let laws = [
        ("weibull k=0.7", FailureModel::Weibull(0.7)),
        ("exponential", FailureModel::Exponential),
        ("weibull k=1.5", FailureModel::Weibull(1.5)),
    ];

    let mut t = Table::new(["strategy", "weibull k=0.7", "exponential", "weibull k=1.5"]);
    for strategy in Strategy::all_seven() {
        let mut cells = vec![strategy.name()];
        for (_, law) in &laws {
            let cfg = SimConfig::new(platform.clone(), classes.clone(), strategy)
                .with_span(scale.span)
                .with_failures(*law);
            cells.push(format!("{:.4}", run_many(&cfg, &scale.mc()).mean()));
        }
        t.row(cells);
    }
    emit(&t);
    println!("\n(waste ratio; k=1 equals the exponential law)");
}
