//! Table 1 of the paper: the LANL APEX workload, with the checkpoint
//! costs and Young/Daly periods our model derives from it on Cielo.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin table1
//! ```

use coopckpt_model::Platform;
use coopckpt_stats::Table;
use coopckpt_workload::{cielo, classes_for, APEX_SPECS};

fn print_for(platform: &Platform) {
    println!("\n== {} ==", platform);
    let mut t = Table::new([
        "workflow",
        "workload_%",
        "work_h",
        "cores",
        "nodes",
        "input_%mem",
        "output_%mem",
        "ckpt_%mem",
        "ckpt_size",
        "C_secs",
        "P_daly_min",
    ]);
    let classes = classes_for(platform);
    for (spec, class) in APEX_SPECS.iter().zip(&classes) {
        t.row([
            spec.name.to_string(),
            format!("{}", spec.workload_pct),
            format!("{}", spec.work_hours),
            format!("{}", spec.cores),
            format!("{}", class.q_nodes),
            format!("{}", spec.input_pct),
            format!("{}", spec.output_pct),
            format!("{}", spec.ckpt_pct),
            format!("{}", class.ckpt_bytes),
            format!(
                "{:.1}",
                class.ckpt_duration(platform.pfs_bandwidth).as_secs()
            ),
            format!("{:.1}", class.daly_period(platform).as_secs() / 60.0),
        ]);
    }
    coopckpt_bench::emit(&t);
}

fn main() {
    println!("# Paper Table 1: LANL workflow workload from the APEX report");
    print_for(&cielo());
    print_for(&coopckpt_workload::prospective());
}
