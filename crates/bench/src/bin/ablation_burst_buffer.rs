//! Ablation: the burst-buffer tier (paper Section 8, future work).
//!
//! The paper speculates that NVRAM burst buffers absorbing checkpoint
//! writes would "provide relief to the shared I/O subsystem". This
//! ablation adds a node-local buffer tier (absorb at `write_bw_per_node ×
//! q`, background drain to the PFS, durability on drain completion,
//! admission control on capacity) and measures the waste reduction at the
//! scarce-bandwidth operating point of Figure 2.
//!
//! Each variant is the shared base [`Scenario`] with only its
//! `burst_buffer` field swapped, and results flow through the same
//! [`Report`] writers as the CLI (`--csv <path>` / `--json <path>`).
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_burst_buffer [-- --json out.json]
//! ```

use coopckpt::prelude::*;
use coopckpt::sim::BurstBufferSpec;
use coopckpt_bench::{banner, cielo_scenario, emit_report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: burst-buffer tier (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let base = cielo_scenario(40.0, &scale).with_name("ablation-burst-buffer");
    let platform = base.resolve_platform().expect("cielo preset is valid");

    // Buffer variants: none; half the platform memory at 1 GB/s per node;
    // 2x platform memory at 4 GB/s per node (ample NVRAM).
    let variants: [(&str, Option<BurstBufferSpec>); 3] = [
        ("no burst buffer", None),
        (
            "0.5x mem, 1 GB/s/node",
            Some(BurstBufferSpec {
                capacity: platform.total_memory() * 0.5,
                write_bw_per_node: Bandwidth::from_gbps(1.0),
            }),
        ),
        (
            "2x mem, 4 GB/s/node",
            Some(BurstBufferSpec {
                capacity: platform.total_memory() * 2.0,
                write_bw_per_node: Bandwidth::from_gbps(4.0),
            }),
        ),
    ];

    let mut report = Report::new("ablation_burst_buffer", Some(base.clone()));
    report.note(
        "waste ratio; the drain still contends on the PFS, so gains shrink when it saturates",
    );
    let table = report.section(
        "waste_by_buffer",
        ["strategy".to_string()]
            .into_iter()
            .chain(variants.iter().map(|(label, _)| label.to_string())),
    );
    for strategy in [
        Strategy::oblivious(CheckpointPolicy::Daly),
        Strategy::ordered(CheckpointPolicy::Daly),
        Strategy::ordered_nb(CheckpointPolicy::Daly),
        Strategy::least_waste(),
    ] {
        let mut cells = vec![Cell::text(strategy.name())];
        for (_, bb) in &variants {
            let mut sc = base.clone().with_strategy(strategy);
            sc.burst_buffer = *bb;
            let config = sc.into_config().expect("bench scenario is valid");
            cells.push(Cell::f4(run_many(&config, &sc.mc()).mean()));
        }
        table.row(cells);
    }
    emit_report(&report);
}
