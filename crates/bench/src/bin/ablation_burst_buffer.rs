//! Ablation: the burst-buffer tier (paper Section 8, future work).
//!
//! The paper speculates that NVRAM burst buffers absorbing checkpoint
//! writes would "provide relief to the shared I/O subsystem". This
//! ablation adds a node-local buffer tier (absorb at `write_bw_per_node ×
//! q`, background drain to the PFS, durability on drain completion,
//! admission control on capacity) and measures the waste reduction at the
//! scarce-bandwidth operating point of Figure 2.
//!
//! ```sh
//! cargo run --release -p coopckpt-bench --bin ablation_burst_buffer
//! ```

use coopckpt::prelude::*;
use coopckpt::sim::BurstBufferSpec;
use coopckpt_bench::{banner, emit, BenchScale};
use coopckpt_stats::Table;

fn main() {
    let scale = BenchScale::from_env();
    banner(
        "Ablation: burst-buffer tier (Cielo, 40 GB/s, node MTBF 2 y)",
        &scale,
    );

    let platform = coopckpt_workload::cielo().with_bandwidth(Bandwidth::from_gbps(40.0));
    let classes = coopckpt_workload::classes_for(&platform);

    // Buffer variants: none; half the platform memory at 1 GB/s per node;
    // 2x platform memory at 4 GB/s per node (ample NVRAM).
    let variants: [(&str, Option<BurstBufferSpec>); 3] = [
        ("no burst buffer", None),
        (
            "0.5x mem, 1 GB/s/node",
            Some(BurstBufferSpec {
                capacity: platform.total_memory() * 0.5,
                write_bw_per_node: Bandwidth::from_gbps(1.0),
            }),
        ),
        (
            "2x mem, 4 GB/s/node",
            Some(BurstBufferSpec {
                capacity: platform.total_memory() * 2.0,
                write_bw_per_node: Bandwidth::from_gbps(4.0),
            }),
        ),
    ];

    let mut t = Table::new([
        "strategy",
        "no burst buffer",
        "0.5x mem, 1 GB/s/node",
        "2x mem, 4 GB/s/node",
    ]);
    for strategy in [
        Strategy::oblivious(CheckpointPolicy::Daly),
        Strategy::ordered(CheckpointPolicy::Daly),
        Strategy::ordered_nb(CheckpointPolicy::Daly),
        Strategy::least_waste(),
    ] {
        let mut cells = vec![strategy.name()];
        for (_, bb) in &variants {
            let mut cfg =
                SimConfig::new(platform.clone(), classes.clone(), strategy).with_span(scale.span);
            if let Some(spec) = bb {
                cfg = cfg.with_burst_buffer(*spec);
            }
            cells.push(format!("{:.4}", run_many(&cfg, &scale.mc()).mean()));
        }
        t.row(cells);
    }
    emit(&t);
    println!(
        "\n(waste ratio; the drain still contends on the PFS, so gains shrink when it saturates)"
    );
}
