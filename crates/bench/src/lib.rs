//! Shared scaffolding for the figure-reproduction binaries.
//!
//! Every binary honours three environment variables so the full suite can
//! be scaled from a quick smoke run to paper-scale statistics:
//!
//! | variable               | meaning                         | default |
//! |------------------------|---------------------------------|---------|
//! | `COOPCKPT_SAMPLES`     | Monte-Carlo instances per point | 100     |
//! | `COOPCKPT_SPAN_DAYS`   | simulated span per instance     | 60      |
//! | `COOPCKPT_THREADS`     | worker threads (0 = all cores)  | 0       |
//!
//! Results are printed as an aligned table and, when `--csv <path>` is
//! passed, also written as CSV for plotting.

use coopckpt::experiments::SweepPoint;
use coopckpt::prelude::*;
use coopckpt_stats::Table;

/// Run-scale knobs read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Monte-Carlo instances per operating point.
    pub samples: usize,
    /// Simulated span per instance.
    pub span: Duration,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl BenchScale {
    /// Reads `COOPCKPT_SAMPLES` / `COOPCKPT_SPAN_DAYS` / `COOPCKPT_THREADS`.
    pub fn from_env() -> Self {
        BenchScale {
            samples: env_parse("COOPCKPT_SAMPLES", 100),
            span: Duration::from_days(env_parse("COOPCKPT_SPAN_DAYS", 60.0)),
            threads: env_parse("COOPCKPT_THREADS", 0),
        }
    }

    /// The Monte-Carlo configuration for this scale.
    pub fn mc(&self) -> MonteCarloConfig {
        MonteCarloConfig::new(self.samples).with_threads(self.threads)
    }

    /// Stamps the scale's span/samples/threads onto a scenario.
    pub fn apply(&self, mut scenario: Scenario) -> Scenario {
        scenario.span = self.span;
        scenario.samples = self.samples;
        scenario.threads = self.threads;
        scenario
    }
}

/// The ablations' shared operating point as a declarative [`Scenario`]:
/// the Cielo preset at the given bandwidth (scarce 40 GB/s in most
/// ablations), 2-year node MTBF, APEX workload, at this scale.
pub fn cielo_scenario(bandwidth_gbps: f64, scale: &BenchScale) -> Scenario {
    let sc = Scenario {
        platform: PlatformSpec::Preset {
            name: "cielo".to_string(),
            bandwidth: Some(Bandwidth::from_gbps(bandwidth_gbps)),
            node_mtbf: None,
        },
        ..Scenario::default()
    };
    scale.apply(sc)
}

fn env_parse<T: std::str::FromStr + Copy>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Renders sweep points as the paper's figure data: one row per
/// `(x, series)` with candlestick columns.
pub fn sweep_table(x_label: &str, points: &[SweepPoint]) -> Table {
    let mut t = Table::new([
        x_label, "series", "mean", "d1", "q1", "median", "q3", "d9", "n",
    ]);
    for p in points {
        t.row([
            format!("{}", p.x),
            p.series.clone(),
            format!("{:.4}", p.stats.mean),
            format!("{:.4}", p.stats.d1),
            format!("{:.4}", p.stats.q1),
            format!("{:.4}", p.stats.median),
            format!("{:.4}", p.stats.q3),
            format!("{:.4}", p.stats.d9),
            format!("{}", p.stats.n),
        ]);
    }
    t
}

/// Prints the table and honours an optional `--csv <path>` argument.
pub fn emit(table: &Table) {
    print!("{}", table.to_text());
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--csv" {
            if let Some(path) = args.next() {
                write_or_warn(&path, table.to_csv(), "CSV");
            }
        }
    }
}

/// Prints a [`Report`] as text and honours optional `--csv <path>` and
/// `--json <path>` arguments, so every ablation binary shares the CLI's
/// writers.
pub fn emit_report(report: &Report) {
    print!("{}", report.to_text());
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => {
                if let Some(path) = args.next() {
                    write_or_warn(&path, report.to_csv(), "CSV");
                }
            }
            "--json" => {
                if let Some(path) = args.next() {
                    write_or_warn(&path, report.to_json().pretty(), "JSON");
                }
            }
            _ => {}
        }
    }
}

fn write_or_warn(path: &str, content: String, what: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("# {what} written to {path}");
    }
}

/// A one-line provenance header for every bench binary.
pub fn banner(what: &str, scale: &BenchScale) {
    println!(
        "# {what} — {} samples/point, {:.0}-day span, threads={}",
        scale.samples,
        scale.span.as_days(),
        if scale.threads == 0 {
            "all".to_string()
        } else {
            scale.threads.to_string()
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopckpt_stats::Candlestick;

    #[test]
    fn mc_carries_scale() {
        let s = BenchScale {
            samples: 7,
            span: Duration::from_days(3.0),
            threads: 2,
        };
        let mc = s.mc();
        assert_eq!(mc.samples, 7);
        assert_eq!(mc.threads, 2);
    }

    #[test]
    fn cielo_scenario_carries_the_scale() {
        let s = BenchScale {
            samples: 9,
            span: Duration::from_days(2.0),
            threads: 3,
        };
        let sc = cielo_scenario(40.0, &s);
        assert_eq!(sc.samples, 9);
        assert_eq!(sc.threads, 3);
        assert_eq!(sc.span, Duration::from_days(2.0));
        let p = sc.resolve_platform().unwrap();
        assert_eq!(p.name, "Cielo");
        assert_eq!(p.pfs_bandwidth, Bandwidth::from_gbps(40.0));
    }

    #[test]
    fn sweep_table_layout() {
        let pts = vec![SweepPoint {
            x: 40.0,
            series: "Least-Waste".into(),
            stats: Candlestick::from_samples(&[0.2, 0.3, 0.4]),
        }];
        let t = sweep_table("bandwidth_gbps", &pts);
        let text = t.to_text();
        assert!(text.contains("Least-Waste"));
        assert!(text.contains("bandwidth_gbps"));
        assert_eq!(t.len(), 1);
    }
}
