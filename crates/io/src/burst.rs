//! Burst-buffer tier: the paper's Section 8 future-work extension.
//!
//! A burst buffer (BB) absorbs checkpoint writes at high dedicated
//! bandwidth and drains them to the PFS in the background. The job is
//! blocked only for the (short) absorb; durability on the PFS arrives when
//! the drain completes. If the buffer lacks free space, the write must go
//! to the PFS directly (admission control, no silent queueing).
//!
//! Like [`Pfs`](crate::Pfs), this is a passive, timestamp-driven state
//! machine: the simulator starts drain transfers on the PFS itself and
//! notifies the buffer when they complete, so the BB composes with any
//! interference model and I/O discipline.

use coopckpt_des::{Duration, Time};
use coopckpt_model::{Bandwidth, Bytes};

/// Outcome of asking the burst buffer to absorb a write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The buffer accepted the write; the job blocks for `absorb_time`,
    /// after which a drain of `volume` must be issued to the PFS.
    Accepted {
        /// How long the writer is blocked (volume / write bandwidth).
        absorb_time: Duration,
    },
    /// Not enough free space; the caller must write to the PFS directly.
    Rejected {
        /// Free space at the time of the request.
        free: Bytes,
    },
}

/// Aggregate burst-buffer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BurstStats {
    /// Writes absorbed by the buffer.
    pub accepted: u64,
    /// Writes rejected for lack of space.
    pub rejected: u64,
    /// Total bytes absorbed.
    pub bytes_absorbed: Bytes,
    /// Total bytes drained to the PFS.
    pub bytes_drained: Bytes,
    /// Peak occupancy observed.
    pub peak_occupancy: Bytes,
}

/// A fixed-capacity burst buffer with dedicated absorb bandwidth.
#[derive(Debug, Clone)]
pub struct BurstBuffer {
    capacity: Bytes,
    write_bw: Bandwidth,
    occupancy: Bytes,
    stats: BurstStats,
}

impl BurstBuffer {
    /// Creates a burst buffer.
    ///
    /// # Panics
    ///
    /// Panics unless capacity and write bandwidth are positive and finite.
    pub fn new(capacity: Bytes, write_bw: Bandwidth) -> Self {
        assert!(
            capacity.is_valid() && !capacity.is_zero(),
            "burst buffer capacity must be positive, got {capacity}"
        );
        assert!(
            write_bw.is_valid() && !write_bw.is_zero(),
            "burst buffer write bandwidth must be positive, got {write_bw}"
        );
        BurstBuffer {
            capacity,
            write_bw,
            occupancy: Bytes::ZERO,
            stats: BurstStats::default(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently held (absorbed but not yet fully drained).
    pub fn occupancy(&self) -> Bytes {
        self.occupancy
    }

    /// Free space.
    pub fn free(&self) -> Bytes {
        (self.capacity - self.occupancy).max_zero()
    }

    /// Dedicated absorb bandwidth.
    pub fn write_bandwidth(&self) -> Bandwidth {
        self.write_bw
    }

    /// Statistics so far.
    pub fn stats(&self) -> BurstStats {
        self.stats
    }

    /// The time to absorb `volume` at the dedicated write bandwidth.
    pub fn absorb_time(&self, volume: Bytes) -> Duration {
        volume.transfer_time(self.write_bw)
    }

    /// Requests admission of a `volume`-byte write at `now`.
    ///
    /// On acceptance the bytes occupy the buffer immediately (the absorb is
    /// reserved space) and the caller is responsible for issuing the drain
    /// to the PFS once the absorb completes, then calling
    /// [`drain_complete`](BurstBuffer::drain_complete).
    pub fn try_absorb(&mut self, _now: Time, volume: Bytes) -> Admission {
        assert!(volume.is_valid(), "invalid write volume {volume}");
        if volume > self.free() {
            self.stats.rejected += 1;
            return Admission::Rejected { free: self.free() };
        }
        self.occupancy += volume;
        self.stats.accepted += 1;
        self.stats.bytes_absorbed += volume;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy);
        Admission::Accepted {
            absorb_time: self.absorb_time(volume),
        }
    }

    /// Notifies the buffer that a drain of `volume` bytes finished on the
    /// PFS, freeing the space.
    ///
    /// # Panics
    ///
    /// Panics when more bytes are drained than are held (a protocol bug in
    /// the caller).
    pub fn drain_complete(&mut self, volume: Bytes) {
        assert!(
            volume.as_bytes() <= self.occupancy.as_bytes() + 1.0,
            "drain of {volume} exceeds occupancy {}",
            self.occupancy
        );
        self.occupancy = (self.occupancy - volume).max_zero();
        self.stats.bytes_drained += volume;
    }

    /// Discards held bytes without draining (e.g. the owning job failed and
    /// its buffered checkpoint is useless).
    pub fn discard(&mut self, volume: Bytes) {
        self.occupancy = (self.occupancy - volume).max_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb() -> BurstBuffer {
        // 10 TB buffer absorbing at 500 GB/s.
        BurstBuffer::new(Bytes::from_tb(10.0), Bandwidth::from_gbps(500.0))
    }

    #[test]
    fn absorb_is_fast_and_occupies_space() {
        let mut b = bb();
        let v = Bytes::from_tb(2.0);
        match b.try_absorb(Time::ZERO, v) {
            Admission::Accepted { absorb_time } => {
                // 2 TB at 500 GB/s = 4 s.
                assert!((absorb_time.as_secs() - 4.0).abs() < 1e-9);
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert_eq!(b.occupancy(), v);
        assert!((b.free().as_tb() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rejection_when_full() {
        let mut b = bb();
        assert!(matches!(
            b.try_absorb(Time::ZERO, Bytes::from_tb(9.0)),
            Admission::Accepted { .. }
        ));
        match b.try_absorb(Time::from_secs(1.0), Bytes::from_tb(2.0)) {
            Admission::Rejected { free } => {
                assert!((free.as_tb() - 1.0).abs() < 1e-9);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(b.stats().rejected, 1);
    }

    #[test]
    fn drain_frees_space() {
        let mut b = bb();
        b.try_absorb(Time::ZERO, Bytes::from_tb(6.0));
        b.drain_complete(Bytes::from_tb(6.0));
        assert!(b.occupancy().is_zero());
        // Space is available again.
        assert!(matches!(
            b.try_absorb(Time::from_secs(10.0), Bytes::from_tb(10.0)),
            Admission::Accepted { .. }
        ));
        let s = b.stats();
        assert_eq!(s.accepted, 2);
        assert!((s.bytes_absorbed.as_tb() - 16.0).abs() < 1e-9);
        assert!((s.bytes_drained.as_tb() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut b = bb();
        b.try_absorb(Time::ZERO, Bytes::from_tb(4.0));
        b.try_absorb(Time::ZERO, Bytes::from_tb(5.0));
        b.drain_complete(Bytes::from_tb(4.0));
        b.try_absorb(Time::ZERO, Bytes::from_tb(1.0));
        assert!((b.stats().peak_occupancy.as_tb() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn discard_on_failure() {
        let mut b = bb();
        b.try_absorb(Time::ZERO, Bytes::from_tb(3.0));
        b.discard(Bytes::from_tb(3.0));
        assert!(b.occupancy().is_zero());
        // Discarded bytes never count as drained.
        assert!(b.stats().bytes_drained.is_zero());
    }

    #[test]
    #[should_panic(expected = "exceeds occupancy")]
    fn overdrain_panics() {
        let mut b = bb();
        b.try_absorb(Time::ZERO, Bytes::from_tb(1.0));
        b.drain_complete(Bytes::from_tb(2.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BurstBuffer::new(Bytes::ZERO, Bandwidth::from_gbps(1.0));
    }
}
