//! Pending-request pool for token-based I/O disciplines.
//!
//! *Ordered* and *Ordered-NB* grant the I/O token First-Come-First-Served;
//! *Least-Waste* grants it to the candidate minimizing expected platform
//! waste. [`RequestQueue`] supports both: FCFS pop, and argmin selection
//! under a caller-provided cost function that can inspect each request's
//! metadata and age.

use coopckpt_des::Time;
use std::collections::VecDeque;

/// Identifier of a queued request within one [`RequestQueue`]. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

/// A queued I/O request.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRequest<M> {
    /// The request's id.
    pub id: RequestId,
    /// When the request was issued (`d_j` in the paper is `now − arrived`).
    pub arrived: Time,
    /// Caller metadata (job id, transfer kind, volume, ...).
    pub meta: M,
}

/// FIFO request pool with O(1) FCFS pop and linear-scan argmin selection.
///
/// Request counts here are small (one per concurrently waiting job), so a
/// `VecDeque` with linear scans beats fancier structures and keeps
/// iteration order — which *is* the FCFS order — obvious.
#[derive(Debug, Clone, Default)]
pub struct RequestQueue<M> {
    queue: VecDeque<PendingRequest<M>>,
    next_id: u64,
}

impl<M> RequestQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RequestQueue {
            queue: VecDeque::new(),
            next_id: 0,
        }
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a request issued at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the arrival time of the most recent request
    /// (arrivals must be non-decreasing so FCFS order equals queue order).
    pub fn push(&mut self, now: Time, meta: M) -> RequestId {
        if let Some(last) = self.queue.back() {
            assert!(
                now >= last.arrived,
                "request arrivals must be non-decreasing"
            );
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        coopckpt_obs::count(coopckpt_obs::Counter::TokenWaits, 1);
        self.queue.push_back(PendingRequest {
            id,
            arrived: now,
            meta,
        });
        id
    }

    /// Removes and returns the oldest request (FCFS).
    pub fn pop_fcfs(&mut self) -> Option<PendingRequest<M>> {
        self.queue.pop_front()
    }

    /// Returns a reference to the oldest request without removing it.
    pub fn peek_fcfs(&self) -> Option<&PendingRequest<M>> {
        self.queue.front()
    }

    /// Removes and returns the request minimizing `cost`. Ties break in
    /// FCFS order (the earliest arrival among minima), keeping selection
    /// deterministic.
    pub fn pop_min_by(
        &mut self,
        mut cost: impl FnMut(&PendingRequest<M>) -> f64,
    ) -> Option<PendingRequest<M>> {
        if self.queue.is_empty() {
            return None;
        }
        let mut best_idx = 0;
        let mut best_cost = f64::INFINITY;
        for (i, req) in self.queue.iter().enumerate() {
            let c = cost(req);
            debug_assert!(!c.is_nan(), "cost function returned NaN");
            if c < best_cost {
                best_cost = c;
                best_idx = i;
            }
        }
        self.queue.remove(best_idx)
    }

    /// Removes a specific request (e.g. its job failed while waiting).
    pub fn remove(&mut self, id: RequestId) -> Option<PendingRequest<M>> {
        let idx = self.queue.iter().position(|r| r.id == id)?;
        self.queue.remove(idx)
    }

    /// Removes every request matching the predicate, returning them in FCFS
    /// order (e.g. flush all requests of a failed job).
    pub fn remove_where(
        &mut self,
        mut pred: impl FnMut(&PendingRequest<M>) -> bool,
    ) -> Vec<PendingRequest<M>> {
        let mut removed = Vec::new();
        let mut kept = VecDeque::with_capacity(self.queue.len());
        for req in self.queue.drain(..) {
            if pred(&req) {
                removed.push(req);
            } else {
                kept.push_back(req);
            }
        }
        self.queue = kept;
        removed
    }

    /// Iterates pending requests in FCFS order.
    pub fn iter(&self) -> impl Iterator<Item = &PendingRequest<M>> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_order() {
        let mut q = RequestQueue::new();
        q.push(Time::from_secs(1.0), "a");
        q.push(Time::from_secs(2.0), "b");
        q.push(Time::from_secs(2.0), "c");
        assert_eq!(q.pop_fcfs().unwrap().meta, "a");
        assert_eq!(q.pop_fcfs().unwrap().meta, "b");
        assert_eq!(q.pop_fcfs().unwrap().meta, "c");
        assert!(q.pop_fcfs().is_none());
    }

    #[test]
    fn pop_min_selects_cheapest() {
        let mut q = RequestQueue::new();
        q.push(Time::from_secs(0.0), 30.0f64);
        q.push(Time::from_secs(1.0), 10.0);
        q.push(Time::from_secs(2.0), 20.0);
        let got = q.pop_min_by(|r| r.meta).unwrap();
        assert_eq!(got.meta, 10.0);
        assert_eq!(q.len(), 2);
        // Remaining requests keep FCFS order.
        let metas: Vec<f64> = q.iter().map(|r| r.meta).collect();
        assert_eq!(metas, vec![30.0, 20.0]);
    }

    #[test]
    fn pop_min_ties_break_fcfs() {
        let mut q = RequestQueue::new();
        q.push(Time::from_secs(0.0), "first");
        q.push(Time::from_secs(1.0), "second");
        let got = q.pop_min_by(|_| 1.0).unwrap();
        assert_eq!(got.meta, "first");
    }

    #[test]
    fn remove_by_id_and_predicate() {
        let mut q = RequestQueue::new();
        let a = q.push(Time::from_secs(0.0), ("job1", 1));
        q.push(Time::from_secs(1.0), ("job2", 2));
        q.push(Time::from_secs(2.0), ("job1", 3));
        assert_eq!(q.remove(a).unwrap().meta, ("job1", 1));
        assert!(q.remove(a).is_none());
        let gone = q.remove_where(|r| r.meta.0 == "job1");
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].meta, ("job1", 3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_fcfs().unwrap().meta, ("job2", 2));
    }

    #[test]
    fn ages_are_observable() {
        let mut q = RequestQueue::new();
        q.push(Time::from_secs(5.0), ());
        let now = Time::from_secs(12.0);
        let age = now.since(q.peek_fcfs().unwrap().arrived);
        assert_eq!(age.as_secs(), 7.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn arrivals_must_be_monotone() {
        let mut q = RequestQueue::new();
        q.push(Time::from_secs(5.0), ());
        q.push(Time::from_secs(4.0), ());
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut q = RequestQueue::new();
        let a = q.push(Time::ZERO, ());
        let b = q.push(Time::ZERO, ());
        assert!(a < b);
        q.pop_fcfs();
        let c = q.push(Time::ZERO, ());
        assert!(b < c);
    }
}
