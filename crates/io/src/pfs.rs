//! The fluid-flow PFS model.
//!
//! Transfers are fluid streams: each has a remaining volume and, at any
//! instant, a rate assigned by the interference model. Between changes of
//! the active set, rates are constant, so progress integrates exactly. The
//! model is driven with explicit timestamps (`advance`, `start`, `cancel`)
//! and never schedules anything itself; the caller asks for
//! [`next_completion`](Pfs::next_completion) and wakes the model at (or
//! before) that instant.
//!
//! Correctness does not depend on the caller's granularity: `advance`
//! internally steps through every intermediate completion boundary and
//! re-splits bandwidth at each, so coarse advances produce the same
//! trajectories as fine-grained ones.

use crate::interference::InterferenceModel;
use coopckpt_des::{Duration, Time};
use coopckpt_model::{Bandwidth, Bytes};
use std::cell::Cell;

/// Residual volumes below this are treated as complete (transfers here are
/// gigabytes to terabytes; one byte is far below f64 resolution noise at
/// that scale).
const EPS_BYTES: f64 = 1.0;

/// Residual transfer *times* below this are treated as complete. Late in a
/// long simulation the clock's f64 ulp exceeds the time a few residual
/// bytes need, so `clock + residual/rate == clock` and time cannot advance
/// across the completion; harvesting sub-microsecond residuals up front
/// removes that trap (a microsecond is eight orders of magnitude below the
/// transfer durations modeled here).
const EPS_SECONDS: f64 = 1e-6;

/// Identifier of a transfer within one [`Pfs`] instance. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

struct Active<M> {
    id: TransferId,
    meta: M,
    volume: Bytes,
    remaining: Bytes,
    weight: f64,
    started: Time,
    rate: Bandwidth,
}

/// A finished transfer, as reported by [`Pfs::take_completed`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTransfer<M> {
    /// The transfer's id.
    pub id: TransferId,
    /// Caller-supplied metadata.
    pub meta: M,
    /// Total volume moved.
    pub volume: Bytes,
    /// When the transfer entered the PFS.
    pub started: Time,
    /// When the last byte moved.
    pub finished: Time,
}

impl<M> CompletedTransfer<M> {
    /// Wall-clock duration of the transfer.
    pub fn duration(&self) -> Duration {
        self.finished.since(self.started)
    }

    /// The contention-free duration at dedicated full bandwidth, and hence
    /// the baseline against which dilation is measured.
    pub fn nominal(&self, full_bw: Bandwidth) -> Duration {
        self.volume.transfer_time(full_bw)
    }

    /// Extra time caused by contention or reduced rate:
    /// `duration − nominal`, clamped at zero.
    pub fn dilation(&self, full_bw: Bandwidth) -> Duration {
        (self.duration() - self.nominal(full_bw)).max_zero()
    }
}

/// Aggregate PFS statistics, maintained incrementally.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PfsStats {
    /// Total bytes fully transferred (completed transfers only).
    pub bytes_completed: Bytes,
    /// Total bytes moved, including partial progress of cancelled transfers.
    pub bytes_moved: Bytes,
    /// Number of completed transfers.
    pub transfers_completed: u64,
    /// Number of cancelled transfers.
    pub transfers_cancelled: u64,
    /// Time during which at least one transfer was active.
    pub busy_time: Duration,
}

/// The shared parallel file system.
///
/// `M` is caller-supplied per-transfer metadata returned on completion
/// (the coopckpt simulator stores the job id and transfer kind there).
pub struct Pfs<M> {
    bandwidth: Bandwidth,
    model: Box<dyn InterferenceModel>,
    active: Vec<Active<M>>,
    completed: Vec<CompletedTransfer<M>>,
    clock: Time,
    next_id: u64,
    stats: PfsStats,
    // Scratch buffers, reused across rate recomputations.
    scratch_weights: Vec<f64>,
    scratch_rates: Vec<Bandwidth>,
    /// Memoized [`next_completion`](Pfs::next_completion) answer. While
    /// the active set (and hence the rate split) is unchanged, every
    /// transfer's completion *instant* is constant even as `advance`
    /// integrates progress, so the O(k) minimum is computed once per rate
    /// change instead of once per query. `None` = stale; invalidated by
    /// [`recompute_rates`](Pfs::recompute_rates).
    cached_next: Cell<Option<Option<Time>>>,
}

impl<M> Pfs<M> {
    /// Creates a PFS with the given aggregate bandwidth and interference
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive and finite.
    pub fn new(bandwidth: Bandwidth, model: impl InterferenceModel) -> Self {
        assert!(
            bandwidth.is_valid() && !bandwidth.is_zero(),
            "PFS bandwidth must be positive, got {bandwidth}"
        );
        Pfs {
            bandwidth,
            model: Box::new(model),
            active: Vec::new(),
            completed: Vec::new(),
            clock: Time::ZERO,
            next_id: 0,
            stats: PfsStats::default(),
            scratch_weights: Vec::new(),
            scratch_rates: Vec::new(),
            cached_next: Cell::new(Some(None)),
        }
    }

    /// The aggregate bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The model's internal clock (the latest `advance`/`start`/`cancel`
    /// timestamp seen).
    pub fn clock(&self) -> Time {
        self.clock
    }

    /// Number of in-flight transfers.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// True when no transfer is in flight.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> PfsStats {
        self.stats
    }

    /// Cumulative busy time as of `now`, *without* mutating the model —
    /// an exact read-ahead of what [`stats`](Pfs::stats) would report
    /// after `advance(now)`. Sound because the caller (the simulation
    /// engine) wakes the model at every completion instant: between the
    /// internal clock and any `now` not past the next completion, the
    /// active set is constant, so the PFS is either busy or idle for the
    /// whole stretch.
    ///
    /// # Panics
    ///
    /// Panics when `now` precedes the model clock.
    pub fn busy_time_at(&self, now: Time) -> Duration {
        assert!(
            now >= self.clock,
            "PFS clock cannot move backwards: clock={}, now={}",
            self.clock,
            now
        );
        if self.active.is_empty() {
            self.stats.busy_time
        } else {
            self.stats.busy_time + now.since(self.clock)
        }
    }

    /// Remaining volume of an in-flight transfer (after an implicit advance
    /// to the model clock — callers should `advance(now)` first for fresh
    /// numbers).
    pub fn remaining(&self, id: TransferId) -> Option<Bytes> {
        self.active.iter().find(|t| t.id == id).map(|t| t.remaining)
    }

    /// Starts a transfer of `volume` with share weight `weight` at `now`.
    ///
    /// Zero-volume transfers complete instantly (they appear in the next
    /// [`take_completed`](Pfs::take_completed)).
    ///
    /// # Panics
    ///
    /// Panics when `volume` is invalid, `weight` is not positive, or `now`
    /// precedes the model clock.
    pub fn start(&mut self, now: Time, volume: Bytes, weight: f64, meta: M) -> TransferId {
        assert!(volume.is_valid(), "invalid transfer volume {volume}");
        assert!(
            weight.is_finite() && weight > 0.0,
            "transfer weight must be positive, got {weight}"
        );
        self.advance(now);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        if volume.as_bytes() <= EPS_BYTES {
            // Degenerate transfer: completes immediately.
            self.completed.push(CompletedTransfer {
                id,
                meta,
                volume,
                started: now,
                finished: now,
            });
            self.stats.bytes_completed += volume;
            self.stats.bytes_moved += volume;
            self.stats.transfers_completed += 1;
            return id;
        }
        self.active.push(Active {
            id,
            meta,
            volume,
            remaining: volume,
            weight,
            started: now,
            rate: Bandwidth::ZERO,
        });
        self.recompute_rates();
        id
    }

    /// Cancels an in-flight transfer (e.g. the owning job failed), returning
    /// its metadata and the unmoved remainder.
    pub fn cancel(&mut self, now: Time, id: TransferId) -> Option<(M, Bytes)> {
        self.advance(now);
        let idx = self.active.iter().position(|t| t.id == id)?;
        let t = self.active.swap_remove(idx);
        self.stats.bytes_moved += t.volume - t.remaining;
        self.stats.transfers_cancelled += 1;
        self.recompute_rates();
        Some((t.meta, t.remaining))
    }

    /// The instant the earliest in-flight transfer will complete under the
    /// *current* active set, or `None` when idle.
    ///
    /// Any `start`/`cancel` invalidates previous answers; the caller must
    /// re-query after mutating the set. Memoized per rate change: with an
    /// unchanged writer set the completion instants are fixed, so repeated
    /// queries (the simulator asks after every wake) cost O(1).
    pub fn next_completion(&self) -> Option<Time> {
        if let Some(cached) = self.cached_next.get() {
            return cached;
        }
        let next = self
            .active
            .iter()
            .filter(|t| !t.rate.is_zero())
            .map(|t| self.clock + t.remaining.transfer_time(t.rate))
            .min();
        self.cached_next.set(Some(next));
        next
    }

    /// Integrates progress up to `now`, stepping through every intermediate
    /// completion boundary (rates are re-split as transfers drain).
    ///
    /// # Panics
    ///
    /// Panics when `now` precedes the model clock.
    pub fn advance(&mut self, now: Time) {
        assert!(
            now >= self.clock,
            "PFS clock cannot move backwards: clock={}, now={}",
            self.clock,
            now
        );
        // Harvest residuals that are already due at the current clock, so a
        // zero-width advance still makes progress (see `EPS_SECONDS`).
        self.harvest_completed();
        while self.clock < now {
            if self.active.is_empty() {
                self.clock = now;
                return;
            }
            // Earliest internal completion under current rates.
            let step_end = self.next_completion().map_or(now, |t| t.min(now));
            let dt = step_end.since(self.clock);
            if dt.is_positive() {
                for t in &mut self.active {
                    let moved = t.rate * dt;
                    t.remaining = (t.remaining - moved).max_zero();
                }
                self.stats.busy_time += dt;
            }
            self.clock = step_end;
            self.harvest_completed();
        }
    }

    /// Moves drained transfers to the completed list and re-splits rates.
    fn harvest_completed(&mut self) {
        let mut any = false;
        let mut i = 0;
        while i < self.active.len() {
            let t = &self.active[i];
            if t.remaining.as_bytes() <= EPS_BYTES
                || t.remaining.as_bytes() <= t.rate.as_bytes_per_sec() * EPS_SECONDS
            {
                let t = self.active.swap_remove(i);
                self.stats.bytes_completed += t.volume;
                self.stats.bytes_moved += t.volume;
                self.stats.transfers_completed += 1;
                self.completed.push(CompletedTransfer {
                    id: t.id,
                    meta: t.meta,
                    volume: t.volume,
                    started: t.started,
                    finished: self.clock,
                });
                any = true;
            } else {
                i += 1;
            }
        }
        if any {
            self.recompute_rates();
        }
    }

    /// Drains the list of completed transfers accumulated since the last
    /// call, in completion order.
    pub fn take_completed(&mut self) -> Vec<CompletedTransfer<M>> {
        let mut done = std::mem::take(&mut self.completed);
        done.sort_by(|a, b| a.finished.cmp(&b.finished).then(a.id.cmp(&b.id)));
        done
    }

    fn recompute_rates(&mut self) {
        // The writer set changed: previously computed completion instants
        // are void.
        self.cached_next.set(None);
        let k = self.active.len();
        if k == 0 {
            // An empty set needs no O(k) scan: pin the answer directly.
            self.cached_next.set(Some(None));
            return;
        }
        self.scratch_weights.clear();
        self.scratch_weights
            .extend(self.active.iter().map(|t| t.weight));
        self.scratch_rates.clear();
        self.scratch_rates.resize(k, Bandwidth::ZERO);
        self.model.split(
            self.bandwidth,
            &self.scratch_weights,
            &mut self.scratch_rates,
        );
        for (t, &rate) in self.active.iter_mut().zip(&self.scratch_rates) {
            t.rate = rate;
        }
    }
}

impl<M> std::fmt::Debug for Pfs<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pfs")
            .field("bandwidth", &self.bandwidth)
            .field("model", &self.model.name())
            .field("clock", &self.clock)
            .field("active", &self.active.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{EqualShare, LinearShare};

    fn pfs_100() -> Pfs<u32> {
        Pfs::new(Bandwidth::from_gbps(100.0), LinearShare)
    }

    #[test]
    fn single_transfer_runs_at_full_bandwidth() {
        let mut pfs = pfs_100();
        pfs.start(Time::ZERO, Bytes::from_gb(200.0), 4.0, 1);
        assert_eq!(pfs.next_completion(), Some(Time::from_secs(2.0)));
        pfs.advance(Time::from_secs(2.0));
        let done = pfs.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished, Time::from_secs(2.0));
        assert!(pfs.is_idle());
    }

    #[test]
    fn two_equal_transfers_halve_rates() {
        let mut pfs = pfs_100();
        pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 1);
        pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 2);
        // 50 GB/s each → 2 s.
        assert_eq!(pfs.next_completion(), Some(Time::from_secs(2.0)));
        pfs.advance(Time::from_secs(2.0));
        assert_eq!(pfs.take_completed().len(), 2);
    }

    #[test]
    fn late_joiner_slows_first_transfer() {
        let mut pfs = pfs_100();
        // A: 100 GB alone for 0.5 s (50 GB moved), then shares 50/50.
        pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 1);
        pfs.start(Time::from_secs(0.5), Bytes::from_gb(100.0), 1.0, 2);
        // A has 50 GB left at 50 GB/s → completes at 1.5 s.
        assert_eq!(pfs.next_completion(), Some(Time::from_secs(1.5)));
        pfs.advance(Time::from_secs(1.5));
        let done = pfs.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].meta, 1);
        // B then runs alone: 50 GB left at 100 GB/s → completes at 2.0 s.
        assert_eq!(pfs.next_completion(), Some(Time::from_secs(2.0)));
        pfs.advance(Time::from_secs(2.0));
        let done = pfs.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].meta, 2);
        assert_eq!(done[0].finished, Time::from_secs(2.0));
    }

    #[test]
    fn coarse_advance_steps_through_boundaries() {
        // Identical scenario to `late_joiner...` but advanced in one jump:
        // internal boundary stepping must produce the same completion times.
        let mut pfs = pfs_100();
        pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 1);
        pfs.start(Time::from_secs(0.5), Bytes::from_gb(100.0), 1.0, 2);
        pfs.advance(Time::from_secs(10.0));
        let done = pfs.take_completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].meta, 1);
        assert!((done[0].finished.as_secs() - 1.5).abs() < 1e-9);
        assert_eq!(done[1].meta, 2);
        assert!((done[1].finished.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_shares() {
        let mut pfs = pfs_100();
        // Weight 3 vs 1: rates 75 and 25 GB/s.
        pfs.start(Time::ZERO, Bytes::from_gb(75.0), 3.0, 1);
        pfs.start(Time::ZERO, Bytes::from_gb(75.0), 1.0, 2);
        // First completes at t=1, second has 50 GB left, then full speed.
        pfs.advance(Time::from_secs(1.0));
        let done = pfs.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].meta, 1);
        assert_eq!(pfs.next_completion(), Some(Time::from_secs(1.5)));
    }

    #[test]
    fn cancel_returns_remainder_and_frees_bandwidth() {
        let mut pfs = pfs_100();
        let a = pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 1);
        pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 2);
        // At t=1, each moved 50 GB.
        let (meta, remaining) = pfs.cancel(Time::from_secs(1.0), a).unwrap();
        assert_eq!(meta, 1);
        assert!((remaining.as_gb() - 50.0).abs() < 1e-9);
        // B now runs alone; 50 GB left → completes at t=1.5.
        assert_eq!(pfs.next_completion(), Some(Time::from_secs(1.5)));
        // Cancelling again is a no-op.
        assert!(pfs.cancel(Time::from_secs(1.2), a).is_none());
    }

    #[test]
    fn zero_volume_completes_instantly() {
        let mut pfs = pfs_100();
        pfs.start(Time::from_secs(3.0), Bytes::ZERO, 1.0, 9);
        let done = pfs.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].started, done[0].finished);
        assert!(pfs.is_idle());
    }

    #[test]
    fn dilation_measures_contention() {
        let mut pfs = pfs_100();
        pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 1);
        pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 2);
        pfs.advance(Time::from_secs(2.0));
        let done = pfs.take_completed();
        let full = Bandwidth::from_gbps(100.0);
        for t in &done {
            assert!((t.duration().as_secs() - 2.0).abs() < 1e-9);
            assert!((t.nominal(full).as_secs() - 1.0).abs() < 1e-9);
            assert!((t.dilation(full).as_secs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_account_volume_and_busy_time() {
        let mut pfs = pfs_100();
        let a = pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, 1);
        pfs.advance(Time::from_secs(0.25));
        pfs.cancel(Time::from_secs(0.5), a); // 50 GB moved
        pfs.start(Time::from_secs(1.0), Bytes::from_gb(100.0), 1.0, 2);
        pfs.advance(Time::from_secs(5.0));
        let stats = pfs.stats();
        assert_eq!(stats.transfers_completed, 1);
        assert_eq!(stats.transfers_cancelled, 1);
        assert!((stats.bytes_completed.as_gb() - 100.0).abs() < 1e-9);
        assert!((stats.bytes_moved.as_gb() - 150.0).abs() < 1e-9);
        // Busy: [0, 0.5] and [1.0, 2.0] → 1.5 s.
        assert!((stats.busy_time.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn equal_share_model_integration() {
        let mut pfs: Pfs<u32> = Pfs::new(Bandwidth::from_gbps(90.0), EqualShare);
        pfs.start(Time::ZERO, Bytes::from_gb(30.0), 100.0, 1);
        pfs.start(Time::ZERO, Bytes::from_gb(30.0), 1.0, 2);
        pfs.start(Time::ZERO, Bytes::from_gb(30.0), 1.0, 3);
        // 30 GB/s each despite weights → all complete at t=1.
        pfs.advance(Time::from_secs(1.0));
        assert_eq!(pfs.take_completed().len(), 3);
    }

    #[test]
    #[should_panic(expected = "clock cannot move backwards")]
    fn advance_rejects_time_travel() {
        let mut pfs = pfs_100();
        pfs.advance(Time::from_secs(2.0));
        pfs.advance(Time::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn start_rejects_zero_weight() {
        pfs_100().start(Time::ZERO, Bytes::from_gb(1.0), 0.0, 1);
    }

    #[test]
    fn completed_order_is_deterministic() {
        let mut pfs = pfs_100();
        // Three transfers finishing at the same instant.
        for i in 0..3 {
            pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, i);
        }
        pfs.advance(Time::from_secs(10.0));
        let metas: Vec<u32> = pfs.take_completed().into_iter().map(|t| t.meta).collect();
        assert_eq!(metas, vec![0, 1, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::interference::LinearShare;
    use proptest::prelude::*;

    proptest! {
        /// Volume conservation: whatever the join pattern, every transfer
        /// completes having moved exactly its volume, and total bytes moved
        /// equal the integral of consumed bandwidth (≤ capacity × busy time).
        #[test]
        fn volume_is_conserved(
            starts in proptest::collection::vec((0.0f64..100.0, 1.0f64..500.0, 1.0f64..64.0), 1..40)
        ) {
            let bw = Bandwidth::from_gbps(100.0);
            let mut pfs: Pfs<usize> = Pfs::new(bw, LinearShare);
            let mut events: Vec<(f64, f64, f64)> = starts;
            events.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut total_volume = 0.0;
            for (i, &(t, gb, w)) in events.iter().enumerate() {
                pfs.start(Time::from_secs(t), Bytes::from_gb(gb), w, i);
                total_volume += gb;
            }
            // Run long enough for everything to finish.
            pfs.advance(Time::from_secs(1e6));
            let done = pfs.take_completed();
            prop_assert_eq!(done.len(), events.len());
            let stats = pfs.stats();
            prop_assert!((stats.bytes_completed.as_gb() - total_volume).abs() < 1e-6 * total_volume.max(1.0));
            // Work conservation: bytes moved == bandwidth × busy_time for the
            // linear (work-conserving) model.
            let capacity_gb = stats.busy_time.as_secs() * 100.0;
            prop_assert!((stats.bytes_moved.as_gb() - capacity_gb).abs() < 1e-6 * capacity_gb.max(1.0),
                "moved {} vs capacity {}", stats.bytes_moved.as_gb(), capacity_gb);
        }

        /// Completion times do not depend on how finely the caller advances
        /// the clock.
        #[test]
        fn advance_granularity_is_irrelevant(
            starts in proptest::collection::vec((0.0f64..50.0, 1.0f64..200.0, 1.0f64..8.0), 1..15),
            step in 0.05f64..7.0,
        ) {
            let bw = Bandwidth::from_gbps(100.0);
            let mut sorted = starts;
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

            // Coarse: single advance to the end.
            let mut coarse: Pfs<usize> = Pfs::new(bw, LinearShare);
            for (i, &(t, gb, w)) in sorted.iter().enumerate() {
                coarse.start(Time::from_secs(t), Bytes::from_gb(gb), w, i);
            }
            coarse.advance(Time::from_secs(1e5));
            let mut a = coarse.take_completed();
            a.sort_by_key(|c| c.meta);

            // Fine: advance in `step`-second increments.
            let mut fine: Pfs<usize> = Pfs::new(bw, LinearShare);
            let mut idx = 0;
            let mut t_now = 0.0;
            while t_now < 1e5 {
                while idx < sorted.len() && sorted[idx].0 <= t_now + step {
                    let (t, gb, w) = sorted[idx];
                    fine.start(Time::from_secs(t.max(t_now)), Bytes::from_gb(gb), w, idx);
                    idx += 1;
                }
                t_now += step;
                fine.advance(Time::from_secs(t_now));
                if idx == sorted.len() && fine.is_idle() {
                    break;
                }
            }
            fine.advance(Time::from_secs(2e5));
            let mut b = fine.take_completed();
            b.sort_by_key(|c| c.meta);

            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x.finished.as_secs() - y.finished.as_secs()).abs() < 1e-6,
                    "meta {}: coarse {} vs fine {}", x.meta, x.finished, y.finished);
            }
        }
    }
}
