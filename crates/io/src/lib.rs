//! Parallel-file-system substrate: time-shared bandwidth with pluggable
//! interference models.
//!
//! The paper's platform model (Section 2) space-shares compute nodes but
//! *time-shares* the PFS: concurrent transfers split the aggregate bandwidth.
//! This crate provides:
//!
//! * [`Pfs`] — a fluid-flow model of the shared file system. Transfers are
//!   fluid streams with a remaining volume; whenever the active set changes,
//!   rates are recomputed from the [`InterferenceModel`] and progress is
//!   integrated exactly (piecewise-linear in time). The model is *passive*:
//!   the caller drives it with explicit timestamps, which keeps it
//!   independent of any particular event loop and directly testable.
//! * [`InterferenceModel`] — how bandwidth divides among streams.
//!   [`LinearShare`] is the paper's model (constant global throughput,
//!   shares proportional to job size); [`DegradedShare`] implements the
//!   "more adversarial" variant of footnote 2; [`EqualShare`] ignores
//!   weights.
//! * [`RequestQueue`] — the pending-request pool used by the token-based
//!   disciplines (*Ordered*, *Ordered-NB*, *Least-Waste*): FCFS pop for the
//!   ordered strategies, arbitrary argmin selection for Least-Waste.
//! * [`burst`] — a two-tier burst-buffer extension (paper Section 8,
//!   future work), kept as the minimal single-tier reference model.
//! * [`hierarchy`] — the N-tier generalization: a [`StorageHierarchy`] of
//!   stacked tiers (node-local → burst buffer → campaign storage → PFS)
//!   with admission control, deterministic spill, and background drain
//!   cascades, driven by the same passive timestamp protocol.
//!
//! # Example: two equal jobs share the PFS
//!
//! ```
//! use coopckpt_io::{LinearShare, Pfs};
//! use coopckpt_model::{Bandwidth, Bytes, Time};
//!
//! let mut pfs: Pfs<&str> = Pfs::new(Bandwidth::from_gbps(100.0), LinearShare);
//! let a = pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, "a");
//! let b = pfs.start(Time::ZERO, Bytes::from_gb(100.0), 1.0, "b");
//! // Each gets 50 GB/s → both complete at t = 2 s (vs 1 s alone).
//! assert_eq!(pfs.next_completion(), Some(Time::from_secs(2.0)));
//! pfs.advance(Time::from_secs(2.0));
//! let done = pfs.take_completed();
//! assert_eq!(done.len(), 2);
//! # let _ = (a, b);
//! ```

pub mod burst;
pub mod hierarchy;
pub mod interference;
pub mod pfs;
pub mod queue;

pub use hierarchy::{DrainHop, Placement, StorageHierarchy, Tier, TierSpec, TierStats};
pub use interference::{DegradedShare, EqualShare, InterferenceModel, LinearShare};
pub use pfs::{CompletedTransfer, Pfs, PfsStats, TransferId};
pub use queue::{PendingRequest, RequestId, RequestQueue};
