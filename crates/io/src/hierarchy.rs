//! Multi-level checkpoint storage hierarchy: the N-tier generalization of
//! [`burst`](crate::burst).
//!
//! Real platforms stage checkpoints through a chain of stores — node-local
//! NVRAM, a shared burst buffer, campaign storage — before the parallel
//! file system. Each tier is small and fast relative to the one below it; a
//! write is absorbed by the shallowest tier with free space and then
//! *drains* tier by tier toward the PFS in the background. The writer is
//! blocked only for the absorb; durability (usability for restart) arrives
//! when the final drain lands on the PFS.
//!
//! Like [`Pfs`](crate::Pfs) and [`BurstBuffer`](crate::burst::BurstBuffer),
//! the hierarchy is a *passive, timestamp-driven state machine*: it never
//! schedules anything itself. The caller (the simulation engine) asks for
//! admission, runs the absorb for the returned duration, then repeatedly
//! plans and completes drain hops until the data reaches the PFS. This
//! keeps the model independent of any event loop and directly testable.
//!
//! Protocol per checkpoint:
//!
//! 1. [`admit`](StorageHierarchy::admit) — finds the shallowest tier with
//!    free space (full tiers are *spilled through*, deterministically, and
//!    counted in their [`TierStats::spills`]). Space is reserved
//!    immediately. When every tier is full, the caller must write to the
//!    PFS directly ([`Placement::Pfs`]).
//! 2. After the absorb completes, [`plan_drain`](StorageHierarchy::plan_drain)
//!    picks the drain destination: the shallowest deeper tier with free
//!    space (reserved immediately), or the PFS when none has room.
//! 3. When the hop's transfer finishes,
//!    [`drain_complete`](StorageHierarchy::drain_complete) frees the source
//!    tier. Repeat from step 2 at the destination level until the data
//!    lands on the PFS.
//! 4. If the owning job fails mid-flight, [`discard`](StorageHierarchy::discard)
//!    releases reserved space without counting it as drained.
//!
//! # Retained copies and restores
//!
//! As a checkpoint cascades down, each tier it visits keeps a *retained
//! copy* in the job's per-tier checkpoint slot after the bytes move on.
//! Retained copies are metadata, not occupancy: the hierarchy reserves
//! space only for data *in flight* (each job cycles one checkpoint slot
//! per tier, overwritten by the next cascade), so tracking them never
//! changes admission or spill decisions. The caller records the visited
//! levels of the last *durable* checkpoint in a [`RetainedCopies`] set;
//! when a failure of severity `s` strikes (invalidating levels `< s`),
//! [`RetainedCopies::restore_source`] picks the shallowest surviving copy
//! and [`restore_from`](StorageHierarchy::restore_from) prices the
//! read-back — at the tier's own bandwidth, without touching the PFS.
//!
//! # Example: a write cascades through two tiers to the PFS
//!
//! ```
//! use coopckpt_io::hierarchy::{DrainHop, Placement, StorageHierarchy, TierSpec};
//! use coopckpt_model::{Bandwidth, Bytes, Time};
//!
//! let mut h = StorageHierarchy::new(vec![
//!     TierSpec::new("node-local", Bytes::from_tb(1.0), Bandwidth::from_gbps(500.0)),
//!     TierSpec::new("burst-buffer", Bytes::from_tb(10.0), Bandwidth::from_gbps(200.0)),
//! ]);
//! let v = Bytes::from_gb(500.0);
//!
//! // 1. Admission lands in the fast top tier: 500 GB at 500 GB/s = 1 s.
//! let Placement::Tier { level, absorb_time } = h.admit(Time::ZERO, v, 1) else {
//!     panic!("tier 0 has space");
//! };
//! assert_eq!(level, 0);
//! assert!((absorb_time.as_secs() - 1.0).abs() < 1e-9);
//!
//! // 2. The drain hops to tier 1 (500 GB at 200 GB/s = 2.5 s)...
//! let DrainHop::Tier { level: dest, transfer_time } = h.plan_drain(0, v) else {
//!     panic!("tier 1 has space");
//! };
//! assert_eq!(dest, 1);
//! assert!((transfer_time.as_secs() - 2.5).abs() < 1e-9);
//! h.drain_complete(0, v); // tier 0 is free again
//!
//! // 3. ...and from the last tier the only way down is the PFS.
//! assert_eq!(h.plan_drain(1, v), DrainHop::Pfs);
//! h.drain_complete(1, v);
//! assert!(h.occupancy_total().is_zero());
//! ```

use coopckpt_des::{Duration, Time};
use coopckpt_model::{Bandwidth, Bytes};

/// Static description of one storage tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Human-readable tier name (used in tables and traces).
    pub name: String,
    /// Total capacity of the tier.
    pub capacity: Bytes,
    /// Write bandwidth into the tier. Aggregate by default; see
    /// [`TierSpec::per_node`].
    pub write_bw: Bandwidth,
    /// When true, `write_bw` is contributed *per node of the writing job*
    /// (node-local storage: a q-node job absorbs at `write_bw × q`).
    /// Background drains between tiers always move at the destination's
    /// aggregate rate.
    pub per_writer_node: bool,
}

impl TierSpec {
    /// A tier with aggregate write bandwidth (shared stores: burst buffers,
    /// campaign storage).
    ///
    /// # Panics
    ///
    /// Panics unless capacity and write bandwidth are positive and finite.
    pub fn new(name: impl Into<String>, capacity: Bytes, write_bw: Bandwidth) -> Self {
        let spec = TierSpec {
            name: name.into(),
            capacity,
            write_bw,
            per_writer_node: false,
        };
        spec.validate();
        spec
    }

    /// A tier whose write bandwidth scales with the writing job's node
    /// count (node-local storage).
    ///
    /// # Panics
    ///
    /// Panics unless capacity and write bandwidth are positive and finite.
    pub fn per_node(
        name: impl Into<String>,
        capacity: Bytes,
        write_bw_per_node: Bandwidth,
    ) -> Self {
        let spec = TierSpec {
            name: name.into(),
            capacity,
            write_bw: write_bw_per_node,
            per_writer_node: true,
        };
        spec.validate();
        spec
    }

    fn validate(&self) {
        assert!(
            self.capacity.is_valid() && !self.capacity.is_zero(),
            "tier '{}': capacity must be positive, got {}",
            self.name,
            self.capacity
        );
        assert!(
            self.write_bw.is_valid() && !self.write_bw.is_zero(),
            "tier '{}': write bandwidth must be positive, got {}",
            self.name,
            self.write_bw
        );
    }
}

/// Aggregate statistics of one tier.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierStats {
    /// Writes admitted into this tier.
    pub admitted: u64,
    /// Writes that found this tier full and fell through to the next one
    /// (or to the PFS).
    pub spills: u64,
    /// Bytes absorbed from writers.
    pub bytes_absorbed: Bytes,
    /// Bytes that arrived by draining from a shallower tier.
    pub bytes_forwarded_in: Bytes,
    /// Bytes drained out toward the PFS.
    pub bytes_drained_out: Bytes,
    /// Bytes discarded (owning job failed before the drain landed).
    pub bytes_discarded: Bytes,
    /// Peak occupancy observed.
    pub peak_occupancy: Bytes,
    /// Recovery reads served from this tier's retained copies.
    pub restores: u64,
    /// Bytes read back for recovery from this tier.
    pub bytes_restored: Bytes,
}

/// The set of hierarchy levels holding a retained copy of one job's last
/// durable checkpoint (a compact level bitmask; see the
/// [module docs](self) for the retention model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetainedCopies(u32);

impl RetainedCopies {
    /// No retained copies: only the PFS holds the checkpoint.
    pub const EMPTY: RetainedCopies = RetainedCopies(0);

    /// Marks a retained copy at `level`.
    pub fn record(&mut self, level: usize) {
        debug_assert!(level < 32, "level {level} out of bitmask range");
        self.0 |= 1 << level;
    }

    /// Drops the copy at `level` (overwritten by a newer cascade).
    pub fn forget(&mut self, level: usize) {
        debug_assert!(level < 32, "level {level} out of bitmask range");
        self.0 &= !(1 << level);
    }

    /// Drops every retained copy (a fresh checkpoint committed straight to
    /// the PFS, superseding all tier copies).
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// True when `level` holds a retained copy.
    pub fn contains(&self, level: usize) -> bool {
        level < 32 && self.0 & (1 << level) != 0
    }

    /// True when no tier holds a copy.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Applies a severity-`severity` strike: copies at levels
    /// `< severity` are lost (pass [`usize::MAX`] for a system failure
    /// that wipes every tier).
    pub fn invalidate_below(&mut self, severity: usize) {
        if severity >= 32 {
            self.0 = 0;
        } else {
            self.0 &= !((1u32 << severity) - 1);
        }
    }

    /// The restore source after a severity-`severity` strike: the
    /// shallowest retained level the strike did not reach (`>= severity`),
    /// or `None` when only the PFS copy survives. Never returns a level
    /// shallower than the shallowest surviving copy — the recovery-
    /// semantics property suite pins this down.
    pub fn restore_source(&self, severity: usize) -> Option<usize> {
        if severity >= 32 {
            return None;
        }
        let surviving = self.0 & !((1u32 << severity) - 1);
        if surviving == 0 {
            None
        } else {
            Some(surviving.trailing_zeros() as usize)
        }
    }

    /// The retained levels, shallow to deep.
    pub fn levels(&self) -> impl Iterator<Item = usize> + '_ {
        (0..32).filter(|&l| self.contains(l))
    }
}

/// One tier's live state.
#[derive(Debug, Clone)]
pub struct Tier {
    spec: TierSpec,
    occupancy: Bytes,
    stats: TierStats,
}

impl Tier {
    /// The static description.
    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    /// Bytes currently held (reserved space included).
    pub fn occupancy(&self) -> Bytes {
        self.occupancy
    }

    /// Free space.
    pub fn free(&self) -> Bytes {
        (self.spec.capacity - self.occupancy).max_zero()
    }

    /// Statistics so far.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    fn reserve(&mut self, volume: Bytes) {
        self.occupancy += volume;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy);
    }

    fn release(&mut self, volume: Bytes) {
        debug_assert!(
            volume.as_bytes() <= self.occupancy.as_bytes() + 1.0,
            "tier '{}': releasing {volume} exceeds occupancy {}",
            self.spec.name,
            self.occupancy
        );
        self.occupancy = (self.occupancy - volume).max_zero();
    }
}

/// Outcome of asking the hierarchy to absorb a write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Tier `level` accepted the write; the writer blocks for
    /// `absorb_time`, after which a drain from `level` must be planned.
    Tier {
        /// The accepting tier (0 is the shallowest/fastest).
        level: usize,
        /// How long the writer is blocked.
        absorb_time: Duration,
    },
    /// Every tier is full (or the hierarchy is empty): the caller must
    /// write to the PFS directly.
    Pfs,
}

/// Destination of one background drain hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DrainHop {
    /// Drain into tier `level`; space there is already reserved. The hop
    /// takes `transfer_time` at the destination's aggregate bandwidth.
    Tier {
        /// The destination tier.
        level: usize,
        /// Duration of the hop.
        transfer_time: Duration,
    },
    /// No deeper tier has room (or this is the last tier): drain to the
    /// PFS through whatever I/O discipline the caller runs.
    Pfs,
}

/// A fixed stack of storage tiers between writers and the PFS.
///
/// Tier 0 is the shallowest (fastest, closest to the job); higher indices
/// sit deeper, and the PFS is the implicit terminal level below them all.
#[derive(Debug, Clone)]
pub struct StorageHierarchy {
    tiers: Vec<Tier>,
}

impl StorageHierarchy {
    /// Creates a hierarchy from shallow to deep. An empty spec list is a
    /// valid degenerate hierarchy that admits nothing (everything goes to
    /// the PFS).
    pub fn new(specs: Vec<TierSpec>) -> Self {
        StorageHierarchy {
            tiers: specs
                .into_iter()
                .map(|spec| {
                    spec.validate();
                    Tier {
                        spec,
                        occupancy: Bytes::ZERO,
                        stats: TierStats::default(),
                    }
                })
                .collect(),
        }
    }

    /// Number of tiers.
    pub fn levels(&self) -> usize {
        self.tiers.len()
    }

    /// True when there are no tiers at all.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The tier at `level` (0 = shallowest).
    pub fn tier(&self, level: usize) -> &Tier {
        &self.tiers[level]
    }

    /// All tiers, shallow to deep.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Sum of all tier occupancies.
    pub fn occupancy_total(&self) -> Bytes {
        self.tiers.iter().map(|t| t.occupancy).sum()
    }

    /// The time tier `level` needs to absorb `volume` from a
    /// `writer_nodes`-node job.
    pub fn absorb_time(&self, level: usize, volume: Bytes, writer_nodes: usize) -> Duration {
        let tier = &self.tiers[level];
        let bw = if tier.spec.per_writer_node {
            tier.spec.write_bw * writer_nodes.max(1) as f64
        } else {
            tier.spec.write_bw
        };
        volume.transfer_time(bw)
    }

    /// The level [`admit`](StorageHierarchy::admit) would place `volume`
    /// at, without reserving anything or touching statistics.
    pub fn would_admit(&self, volume: Bytes) -> Option<usize> {
        self.tiers.iter().position(|t| volume <= t.free())
    }

    /// Requests admission of a `volume`-byte write from a
    /// `writer_nodes`-node job at `now`.
    ///
    /// Walks tiers shallow to deep; full tiers record a spill and the
    /// write falls through. The accepting tier reserves the space
    /// immediately. Returns [`Placement::Pfs`] when every tier is full.
    pub fn admit(&mut self, _now: Time, volume: Bytes, writer_nodes: usize) -> Placement {
        assert!(volume.is_valid(), "invalid write volume {volume}");
        for level in 0..self.tiers.len() {
            if volume <= self.tiers[level].free() {
                self.tiers[level].reserve(volume);
                self.tiers[level].stats.admitted += 1;
                self.tiers[level].stats.bytes_absorbed += volume;
                coopckpt_obs::count(coopckpt_obs::Counter::TierAbsorbs, 1);
                return Placement::Tier {
                    level,
                    absorb_time: self.absorb_time(level, volume, writer_nodes),
                };
            }
            self.tiers[level].stats.spills += 1;
            coopckpt_obs::count(coopckpt_obs::Counter::TierSpills, 1);
        }
        Placement::Pfs
    }

    /// Plans the next background drain hop for `volume` bytes currently
    /// held at `from`: the shallowest deeper tier with free space (its
    /// space is reserved immediately), or the PFS when none has room.
    ///
    /// The source tier stays occupied until
    /// [`drain_complete`](StorageHierarchy::drain_complete).
    pub fn plan_drain(&mut self, from: usize, volume: Bytes) -> DrainHop {
        assert!(from < self.tiers.len(), "no tier at level {from}");
        for level in from + 1..self.tiers.len() {
            if volume <= self.tiers[level].free() {
                self.tiers[level].reserve(volume);
                self.tiers[level].stats.bytes_forwarded_in += volume;
                let transfer_time = volume.transfer_time(self.tiers[level].spec.write_bw);
                return DrainHop::Tier {
                    level,
                    transfer_time,
                };
            }
            self.tiers[level].stats.spills += 1;
            coopckpt_obs::count(coopckpt_obs::Counter::TierSpills, 1);
        }
        DrainHop::Pfs
    }

    /// Notifies the hierarchy that a drain of `volume` bytes out of tier
    /// `from` finished (either into the next tier, whose space was
    /// reserved by [`plan_drain`](StorageHierarchy::plan_drain), or onto
    /// the PFS), freeing the source space.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when more bytes are drained than are held —
    /// a protocol bug in the caller.
    pub fn drain_complete(&mut self, from: usize, volume: Bytes) {
        self.tiers[from].release(volume);
        self.tiers[from].stats.bytes_drained_out += volume;
        coopckpt_obs::count(coopckpt_obs::Counter::TierDrains, 1);
    }

    /// Discards `volume` bytes held at `level` without draining (the
    /// owning job failed; its buffered checkpoint is useless).
    pub fn discard(&mut self, level: usize, volume: Bytes) {
        self.tiers[level].release(volume);
        self.tiers[level].stats.bytes_discarded += volume;
    }

    /// The time a `reader_nodes`-node job needs to read `volume` bytes
    /// back from tier `level` — symmetric to the absorb path (read
    /// bandwidth equals write bandwidth, matching the paper's `R = C`
    /// assumption for the PFS). Non-mutating: use it to *price* a
    /// candidate restore (level-aware Least-Waste) without recording one.
    pub fn restore_time(&self, level: usize, volume: Bytes, reader_nodes: usize) -> Duration {
        self.absorb_time(level, volume, reader_nodes)
    }

    /// Serves a recovery read of `volume` bytes from tier `level`'s
    /// retained copy: returns the read-back duration and records the
    /// restore in the tier's statistics. The read never touches the PFS
    /// (no token, no shared-bandwidth stream) and occupies no tier
    /// capacity — the copy is already resident.
    pub fn restore_from(&mut self, level: usize, volume: Bytes, reader_nodes: usize) -> Duration {
        assert!(volume.is_valid(), "invalid restore volume {volume}");
        let duration = self.restore_time(level, volume, reader_nodes);
        self.tiers[level].stats.restores += 1;
        self.tiers[level].stats.bytes_restored += volume;
        duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tier() -> StorageHierarchy {
        StorageHierarchy::new(vec![
            TierSpec::per_node("local", Bytes::from_tb(1.0), Bandwidth::from_gbps(2.0)),
            TierSpec::new("bb", Bytes::from_tb(4.0), Bandwidth::from_gbps(400.0)),
            TierSpec::new(
                "campaign",
                Bytes::from_tb(16.0),
                Bandwidth::from_gbps(100.0),
            ),
        ])
    }

    #[test]
    fn admission_prefers_the_shallowest_tier() {
        let mut h = three_tier();
        match h.admit(Time::ZERO, Bytes::from_gb(800.0), 100) {
            Placement::Tier { level, absorb_time } => {
                assert_eq!(level, 0);
                // 800 GB at 2 GB/s x 100 nodes = 4 s.
                assert!((absorb_time.as_secs() - 4.0).abs() < 1e-9);
            }
            other => panic!("expected tier 0, got {other:?}"),
        }
        assert_eq!(h.tier(0).stats().admitted, 1);
    }

    #[test]
    fn full_tiers_spill_deterministically() {
        let mut h = three_tier();
        // Fill tier 0; the next write must land at tier 1 and record the
        // spill against tier 0.
        h.admit(Time::ZERO, Bytes::from_tb(1.0), 4);
        match h.admit(Time::ZERO, Bytes::from_gb(500.0), 4) {
            Placement::Tier { level, .. } => assert_eq!(level, 1),
            other => panic!("expected tier 1, got {other:?}"),
        }
        assert_eq!(h.tier(0).stats().spills, 1);
        assert_eq!(h.tier(1).stats().admitted, 1);
        // A volume larger than every tier goes to the PFS.
        assert_eq!(
            h.admit(Time::ZERO, Bytes::from_tb(100.0), 4),
            Placement::Pfs
        );
    }

    #[test]
    fn drain_cascade_conserves_bytes() {
        let mut h = three_tier();
        let v = Bytes::from_gb(600.0);
        h.admit(Time::ZERO, v, 8);
        // Hop 0 -> 1: reserved at 1, still held at 0 until completion.
        let DrainHop::Tier { level, .. } = h.plan_drain(0, v) else {
            panic!("tier 1 has room");
        };
        assert_eq!(level, 1);
        assert_eq!(h.occupancy_total(), v * 2.0);
        h.drain_complete(0, v);
        assert!(h.tier(0).occupancy().is_zero());
        assert_eq!(h.tier(1).occupancy(), v);
        // Hop 1 -> 2, then 2 -> PFS.
        assert!(matches!(
            h.plan_drain(1, v),
            DrainHop::Tier { level: 2, .. }
        ));
        h.drain_complete(1, v);
        assert_eq!(h.plan_drain(2, v), DrainHop::Pfs);
        h.drain_complete(2, v);
        assert!(h.occupancy_total().is_zero());
        // Per-tier conservation: in == out everywhere.
        for t in h.tiers() {
            let s = t.stats();
            let inflow = s.bytes_absorbed + s.bytes_forwarded_in;
            let outflow = s.bytes_drained_out + s.bytes_discarded;
            assert!((inflow.as_bytes() - outflow.as_bytes()).abs() < 1.0);
        }
    }

    #[test]
    fn drain_skips_full_middle_tier() {
        let mut h = three_tier();
        // Fill tier 1 completely; a drain from tier 0 must hop to tier 2.
        h.tiers[1].reserve(Bytes::from_tb(4.0));
        let v = Bytes::from_gb(100.0);
        h.admit(Time::ZERO, v, 2);
        match h.plan_drain(0, v) {
            DrainHop::Tier { level, .. } => assert_eq!(level, 2),
            other => panic!("expected tier 2, got {other:?}"),
        }
        assert_eq!(h.tier(1).stats().spills, 1);
    }

    #[test]
    fn discard_frees_without_draining() {
        let mut h = three_tier();
        let v = Bytes::from_gb(300.0);
        h.admit(Time::ZERO, v, 2);
        h.discard(0, v);
        assert!(h.tier(0).occupancy().is_zero());
        assert!(h.tier(0).stats().bytes_drained_out.is_zero());
        assert_eq!(h.tier(0).stats().bytes_discarded, v);
    }

    #[test]
    fn empty_hierarchy_sends_everything_to_the_pfs() {
        let mut h = StorageHierarchy::new(Vec::new());
        assert!(h.is_empty());
        assert_eq!(h.would_admit(Bytes::from_gb(1.0)), None);
        assert_eq!(h.admit(Time::ZERO, Bytes::from_gb(1.0), 1), Placement::Pfs);
    }

    #[test]
    fn would_admit_matches_admit() {
        let mut h = three_tier();
        let v = Bytes::from_gb(900.0);
        for _ in 0..8 {
            let predicted = h.would_admit(v);
            match h.admit(Time::ZERO, v, 4) {
                Placement::Tier { level, .. } => assert_eq!(predicted, Some(level)),
                Placement::Pfs => assert_eq!(predicted, None),
            }
        }
    }

    #[test]
    fn restore_from_prices_reads_like_absorbs_and_counts_stats() {
        let mut h = three_tier();
        let v = Bytes::from_gb(800.0);
        // Tier 0 is per-node at 2 GB/s: 100 readers -> 4 s, like the
        // absorb in `admission_prefers_the_shallowest_tier`.
        assert!((h.restore_time(0, v, 100).as_secs() - 4.0).abs() < 1e-9);
        let d = h.restore_from(0, v, 100);
        assert_eq!(d, h.restore_time(0, v, 100));
        assert_eq!(h.tier(0).stats().restores, 1);
        assert_eq!(h.tier(0).stats().bytes_restored, v);
        // Aggregate tier 1 at 400 GB/s: 2 s regardless of reader count.
        assert!((h.restore_from(1, v, 1).as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(h.tier(1).stats().restores, 1);
        // Restores never touch occupancy.
        assert!(h.occupancy_total().is_zero());
    }

    #[test]
    fn retained_copies_track_record_forget_clear() {
        let mut r = RetainedCopies::EMPTY;
        assert!(r.is_empty());
        r.record(0);
        r.record(2);
        assert!(r.contains(0) && !r.contains(1) && r.contains(2));
        assert_eq!(r.levels().collect::<Vec<_>>(), vec![0, 2]);
        r.forget(0);
        assert!(!r.contains(0) && r.contains(2));
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn restore_source_is_the_shallowest_surviving_copy() {
        let mut r = RetainedCopies::EMPTY;
        r.record(0);
        r.record(1);
        r.record(2);
        // Severity 0 (process crash): even the shallowest copy survives.
        assert_eq!(r.restore_source(0), Some(0));
        // Severity 1 (node loss): the node-local copy is gone.
        assert_eq!(r.restore_source(1), Some(1));
        // Severity past the deepest copy: PFS only.
        assert_eq!(r.restore_source(3), None);
        assert_eq!(r.restore_source(usize::MAX), None);
        // Gaps are skipped: with only level 2 retained, a severity-1
        // strike restores from level 2.
        let mut sparse = RetainedCopies::EMPTY;
        sparse.record(2);
        assert_eq!(sparse.restore_source(1), Some(2));
    }

    #[test]
    fn invalidate_below_wipes_exactly_the_shallow_levels() {
        let mut r = RetainedCopies::EMPTY;
        for l in 0..4 {
            r.record(l);
        }
        r.invalidate_below(2);
        assert_eq!(r.levels().collect::<Vec<_>>(), vec![2, 3]);
        r.invalidate_below(0); // no-op
        assert_eq!(r.levels().collect::<Vec<_>>(), vec![2, 3]);
        r.invalidate_below(usize::MAX); // system strike
        assert!(r.is_empty());
        assert_eq!(r.restore_source(0), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        TierSpec::new("bad", Bytes::ZERO, Bandwidth::from_gbps(1.0));
    }

    #[test]
    #[should_panic(expected = "write bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        TierSpec::per_node("bad", Bytes::from_gb(1.0), Bandwidth::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Replays a random operation sequence against a small hierarchy,
    /// tracking every write the model accepted so completions/discards are
    /// always legal, then checks the structural invariants.
    fn run_ops(ops: &[(u8, u16)], levels: usize) -> StorageHierarchy {
        let specs: Vec<TierSpec> = (0..levels)
            .map(|l| {
                TierSpec::new(
                    format!("t{l}"),
                    Bytes::from_gb(100.0 * (l + 1) as f64),
                    Bandwidth::from_gbps(10.0),
                )
            })
            .collect();
        let mut h = StorageHierarchy::new(specs);
        // Writes currently resident at some level, eligible to drain.
        let mut resident: Vec<(usize, Bytes)> = Vec::new();
        // In-flight hops: (from, dest-or-PFS, volume).
        let mut hops: Vec<(usize, Option<usize>, Bytes)> = Vec::new();
        for &(op, raw) in ops {
            let volume = Bytes::from_gb(f64::from(raw % 120) + 1.0);
            match op % 4 {
                0 => {
                    if let Placement::Tier { level, .. } = h.admit(Time::ZERO, volume, 4) {
                        resident.push((level, volume));
                    }
                }
                1 => {
                    if let Some((level, v)) = resident.pop() {
                        match h.plan_drain(level, v) {
                            DrainHop::Tier { level: dest, .. } => hops.push((level, Some(dest), v)),
                            DrainHop::Pfs => hops.push((level, None, v)),
                        }
                    }
                }
                2 => {
                    if let Some((from, dest, v)) = hops.pop() {
                        h.drain_complete(from, v);
                        if let Some(dest) = dest {
                            resident.push((dest, v));
                        }
                    }
                }
                _ => {
                    if let Some((level, v)) = resident.pop() {
                        h.discard(level, v);
                    }
                }
            }
        }
        h
    }

    proptest! {
        /// Occupancy never exceeds capacity at any tier, under arbitrary
        /// interleavings of admissions, drains, completions and discards.
        #[test]
        fn occupancy_bounded_by_capacity(
            ops in proptest::collection::vec((0u8..4, 0u16..1000), 0..60),
            levels in 1usize..4,
        ) {
            let h = run_ops(&ops, levels);
            for t in h.tiers() {
                prop_assert!(t.occupancy().as_bytes() <= t.spec().capacity.as_bytes() + 1.0);
                prop_assert!(t.stats().peak_occupancy.as_bytes()
                    <= t.spec().capacity.as_bytes() + 1.0);
            }
        }

        /// Bytes are conserved at every tier: what flowed in equals what
        /// flowed out plus what is still resident.
        #[test]
        fn bytes_conserved_per_tier(
            ops in proptest::collection::vec((0u8..4, 0u16..1000), 0..60),
            levels in 1usize..4,
        ) {
            let h = run_ops(&ops, levels);
            for t in h.tiers() {
                let s = t.stats();
                let inflow = s.bytes_absorbed + s.bytes_forwarded_in;
                let outflow = s.bytes_drained_out + s.bytes_discarded;
                let balance = inflow.as_bytes() - outflow.as_bytes() - t.occupancy().as_bytes();
                prop_assert!(balance.abs() < 1.0, "tier imbalance: {balance}");
            }
        }

        /// Spill is deterministic: admission always lands exactly where
        /// `would_admit` predicts, for any prior operation history.
        #[test]
        fn spill_falls_through_deterministically(
            ops in proptest::collection::vec((0u8..4, 0u16..1000), 0..60),
            volume_gb in 1u16..200,
        ) {
            let mut h = run_ops(&ops, 3);
            let v = Bytes::from_gb(f64::from(volume_gb));
            let predicted = h.would_admit(v);
            match h.admit(Time::ZERO, v, 4) {
                Placement::Tier { level, .. } => {
                    prop_assert_eq!(predicted, Some(level));
                    // Everything shallower was genuinely full.
                    for l in 0..level {
                        prop_assert!(h.tier(l).free() < v);
                    }
                }
                Placement::Pfs => {
                    prop_assert_eq!(predicted, None);
                    for t in h.tiers() {
                        prop_assert!(t.free() < v);
                    }
                }
            }
        }
    }
}
