//! Interference models: how concurrent streams divide PFS bandwidth.

use coopckpt_model::Bandwidth;

/// Splits the aggregate bandwidth among concurrent streams.
///
/// Implementations receive the positive weights of all active streams and
/// write each stream's allocated rate into `rates` (same order). The kernel
/// guarantees `weights.len() == rates.len()` and every weight is positive.
pub trait InterferenceModel: Send + Sync + 'static {
    /// Computes per-stream rates for the given weights.
    fn split(&self, total: Bandwidth, weights: &[f64], rates: &mut [Bandwidth]);

    /// Short model name for reports.
    fn name(&self) -> &'static str;

    /// The aggregate throughput achieved with `k` streams, as a fraction of
    /// `total` (1.0 for work-conserving models). Used by reports and tests.
    fn efficiency(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            1.0
        }
    }
}

/// The paper's model: global throughput stays constant and is shared
/// proportionally to stream weight (the number of nodes performing the I/O).
///
/// With two equal-size jobs writing simultaneously, each observes half the
/// bandwidth and commits take twice as long — the CR–CR contention example
/// of Section 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearShare;

impl InterferenceModel for LinearShare {
    fn split(&self, total: Bandwidth, weights: &[f64], rates: &mut [Bandwidth]) {
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            rates.fill(Bandwidth::ZERO);
            return;
        }
        for (rate, &w) in rates.iter_mut().zip(weights) {
            *rate = total * (w / sum);
        }
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Adversarial variant (paper footnote 2): contention carries a cost, so
/// the *global* throughput degrades as `k^(−alpha)` with `k` concurrent
/// streams; what remains is shared proportionally to weight.
///
/// `alpha = 0` reduces to [`LinearShare`]; `alpha = 0.2` loses ~13 % of
/// throughput at 2 streams and ~37 % at 10.
#[derive(Debug, Clone, Copy)]
pub struct DegradedShare {
    /// Degradation exponent (≥ 0).
    pub alpha: f64,
}

impl DegradedShare {
    /// Creates a degraded-share model.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or non-finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative, got {alpha}"
        );
        DegradedShare { alpha }
    }
}

impl InterferenceModel for DegradedShare {
    fn split(&self, total: Bandwidth, weights: &[f64], rates: &mut [Bandwidth]) {
        let k = weights.len();
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 || k == 0 {
            rates.fill(Bandwidth::ZERO);
            return;
        }
        let effective = total * self.efficiency(k);
        for (rate, &w) in rates.iter_mut().zip(weights) {
            *rate = effective * (w / sum);
        }
    }

    fn name(&self) -> &'static str {
        "degraded"
    }

    fn efficiency(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            (k as f64).powf(-self.alpha)
        }
    }
}

/// Equal split regardless of stream size: every stream gets `total / k`.
///
/// Models file systems whose fair-share QoS ignores client size; a stress
/// variant for the ablation benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualShare;

impl InterferenceModel for EqualShare {
    fn split(&self, total: Bandwidth, weights: &[f64], rates: &mut [Bandwidth]) {
        let k = weights.len();
        if k == 0 {
            return;
        }
        let each = total / k as f64;
        rates.fill(each);
    }

    fn name(&self) -> &'static str {
        "equal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(model: &dyn InterferenceModel, total_gbps: f64, weights: &[f64]) -> Vec<f64> {
        let mut rates = vec![Bandwidth::ZERO; weights.len()];
        model.split(Bandwidth::from_gbps(total_gbps), weights, &mut rates);
        rates.iter().map(|r| r.as_gbps()).collect()
    }

    #[test]
    fn linear_share_is_proportional() {
        let rates = split(&LinearShare, 100.0, &[1.0, 3.0]);
        assert!((rates[0] - 25.0).abs() < 1e-9);
        assert!((rates[1] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn linear_share_is_work_conserving() {
        for n in 1..10 {
            let weights: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let rates = split(&LinearShare, 160.0, &weights);
            let total: f64 = rates.iter().sum();
            assert!((total - 160.0).abs() < 1e-9, "n={n} total={total}");
        }
    }

    #[test]
    fn single_stream_gets_everything() {
        assert!((split(&LinearShare, 40.0, &[7.0])[0] - 40.0).abs() < 1e-12);
        assert!((split(&DegradedShare::new(0.3), 40.0, &[7.0])[0] - 40.0).abs() < 1e-12);
        assert!((split(&EqualShare, 40.0, &[7.0])[0] - 40.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_share_loses_throughput() {
        let m = DegradedShare::new(0.5);
        let rates = split(&m, 100.0, &[1.0, 1.0]);
        let total: f64 = rates.iter().sum();
        // 2 streams at alpha=0.5 → total = 100 / sqrt(2).
        assert!((total - 100.0 / 2f64.sqrt()).abs() < 1e-9);
        assert!((m.efficiency(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degraded_alpha_zero_matches_linear() {
        let a = split(&DegradedShare::new(0.0), 100.0, &[2.0, 5.0, 3.0]);
        let b = split(&LinearShare, 100.0, &[2.0, 5.0, 3.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_share_ignores_weights() {
        let rates = split(&EqualShare, 90.0, &[1.0, 100.0, 5.0]);
        for r in rates {
            assert!((r - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn degraded_rejects_negative_alpha() {
        DegradedShare::new(-0.1);
    }

    #[test]
    fn names_and_efficiencies() {
        assert_eq!(LinearShare.name(), "linear");
        assert_eq!(DegradedShare::new(0.1).name(), "degraded");
        assert_eq!(EqualShare.name(), "equal");
        assert_eq!(LinearShare.efficiency(5), 1.0);
        assert_eq!(LinearShare.efficiency(0), 0.0);
    }
}
