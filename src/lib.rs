//! Workspace hub for the **coopckpt** reproduction of Hérault, Robert,
//! Bouteiller, Arnold, Ferreira, Bosilca, Dongarra: *Optimal Cooperative
//! Checkpointing for Shared High-Performance Computing Platforms*
//! (IPDPS 2018 / INRIA RR-9109).
//!
//! This crate contains no logic of its own. It owns the cross-crate
//! integration suites (`tests/`) and the runnable walkthroughs
//! (`examples/`), and re-exports every library crate so downstream code
//! can depend on the whole family through a single name:
//!
//! ```
//! use coopckpt_suite::theory::{lower_bound, ClassParams};
//! use coopckpt_suite::workload;
//!
//! let platform = workload::cielo();
//! let params: Vec<ClassParams> = workload::classes_for(&platform)
//!     .iter()
//!     .map(|c| ClassParams::from_app_class(c, &platform))
//!     .collect();
//! assert!(lower_bound(&platform, &params).waste > 0.0);
//! ```
//!
//! Start with `cargo run --example quickstart`, or see the crate map in
//! the repository `README.md`.

pub use coopckpt as core;
pub use coopckpt_des as des;
pub use coopckpt_energy as energy;
pub use coopckpt_failure as failure;
pub use coopckpt_io as io;
pub use coopckpt_model as model;
pub use coopckpt_sched as sched;
pub use coopckpt_stats as stats;
pub use coopckpt_theory as theory;
pub use coopckpt_workload as workload;

/// The paper's seven strategies plus the simulator entry points, re-exported
/// at the hub root for convenience.
pub use coopckpt::prelude;
