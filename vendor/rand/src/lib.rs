//! Vendored minimal stand-in for the `rand` crate.
//!
//! This workspace builds offline, so instead of the crates.io `rand` we
//! vendor the *exact* API surface the workspace consumes:
//!
//! * [`rand_core::TryRng`] — the fallible core trait that generators
//!   implement (`coopckpt_failure::Xoshiro256pp` implements it with
//!   `Error = Infallible`).
//! * [`rand_core::Rng`] — the infallible trait, blanket-implemented for
//!   every `TryRng<Error = Infallible>`.
//! * [`RngExt::random_range`] — uniform sampling from half-open ranges of
//!   floats and integers, blanket-implemented for every [`rand_core::Rng`].
//!
//! Everything is dependency-free and deterministic; there is no OS
//! entropy source here on purpose (the simulator requires seed-stable
//! streams).

pub mod rand_core {
    //! Core generator traits, mirroring the `rand_core` layout.

    pub use core::convert::Infallible;

    /// A fallible random generator: the lowest-level trait a source of
    /// randomness implements.
    pub trait TryRng {
        /// Error produced when the underlying source fails. Infallible
        /// generators use [`Infallible`] and get [`Rng`] for free.
        type Error;

        /// Returns the next 32 random bits.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

        /// Returns the next 64 random bits.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

        /// Fills `dest` with random bytes.
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }

    /// An infallible random generator.
    ///
    /// Blanket-implemented for every [`TryRng`] whose error is
    /// [`Infallible`], so implementors only ever write the `try_*` side.
    pub trait Rng {
        /// Returns the next 32 random bits.
        fn next_u32(&mut self) -> u32;
        /// Returns the next 64 random bits.
        fn next_u64(&mut self) -> u64;
        /// Fills `dest` with random bytes.
        fn fill_bytes(&mut self, dest: &mut [u8]);
    }

    impl<T> Rng for T
    where
        T: TryRng<Error = Infallible> + ?Sized,
    {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            match self.try_next_u32() {
                Ok(v) => v,
                Err(e) => match e {},
            }
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            match self.try_next_u64() {
                Ok(v) => v,
                Err(e) => match e {},
            }
        }

        #[inline]
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            match self.try_fill_bytes(dest) {
                Ok(()) => {}
                Err(e) => match e {},
            }
        }
    }
}

use rand_core::Rng;

/// A half-open range that knows how to sample a uniform value of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53-bit uniform in [0, 1), then affine map into [start, end).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        let x = self.start + u * (self.end - self.start);
        // Guard against round-up to `end` at the top of the interval.
        // Returning `start` (not `end - width*EPSILON`, which can round
        // back to `end` for large-magnitude narrow ranges) keeps the
        // half-open contract unconditionally.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0);
        let x = self.start + u * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Unbiased uniform draw in `[0, bound)` via widening-multiply rejection
/// (Lemire 2019).
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut l = m as u64;
    if l < bound {
        let t = bound.wrapping_neg() % bound;
        while l < t {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            l = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                let draw = bounded_u64(rng, width as u64) as $unsigned;
                (self.start as $unsigned).wrapping_add(draw) as $ty
            }
        }
    )*};
}

impl_int_range! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
}

/// User-facing convenience methods, blanket-implemented for every
/// [`rand_core::Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value from a half-open `lo..hi` range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[inline]
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rand_core::{Infallible, Rng, TryRng};
    use super::RngExt;

    /// SplitMix64 — enough randomness for self-tests.
    struct Sm(u64);

    impl TryRng for Sm {
        type Error = Infallible;
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.try_next_u64()? >> 32) as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Ok(z ^ (z >> 31))
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for b in dest.iter_mut() {
                *b = (self.try_next_u64()? & 0xFF) as u8;
            }
            Ok(())
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Sm(1);
        for _ in 0..10_000 {
            let f: f64 = rng.random_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&f));
            let u: u32 = rng.random_range(0..10);
            assert!(u < 10);
            let i: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn blanket_rng_works_via_dyn_compatible_path() {
        let mut rng = Sm(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert_ne!(rng.next_u32(), 0);
    }
}
