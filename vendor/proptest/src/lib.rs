//! Vendored minimal stand-in for `proptest`.
//!
//! The workspace builds offline, so this crate reimplements the slice of
//! the `proptest` API the test suites actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`],
//! * range strategies (`0.0f64..1e6`, `1usize..200`, …), tuple strategies,
//!   [`Just`], [`collection::vec`], [`bool::ANY`] and [`num`] `ANY`s,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   scope; rerunning is deterministic (see below), so failures reproduce
//!   exactly but are not minimized.
//! * **Deterministic seeding.** Case `k` of test `t` is seeded from
//!   `hash(module_path::t) ⊕ k`, so CI runs are stable and a red test
//!   stays red until fixed.
//! * Default case count is 64 (the real default of 256 is overkill for a
//!   deterministic generator); override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

/// Runtime configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator behind every strategy: SplitMix64, seeded
/// per (test, case) so runs are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits (SplitMix64 step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Unbiased uniform draw in `[0, bound)`; `bound` must be positive.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies are usable behind references (the `proptest!` macro
/// evaluates each strategy expression once per case and samples by ref).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        let x = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty => $unsigned:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let width = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                let draw = rng.next_bounded(width as u64) as $unsigned;
                (self.start as $unsigned).wrapping_add(draw) as $ty
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let width = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                let draw = if width == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_bounded(width + 1)
                } as $unsigned;
                (lo as $unsigned).wrapping_add(draw) as $ty
            }
        }
    )*};
}

impl_int_range_strategy! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};

    /// Number of elements a [`vec()`] strategy may produce; built from
    /// either an exact `usize` or a half-open `usize` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `element`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.next_bounded(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use super::{Strategy, TestRng};

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! Strategies for primitive numbers, one submodule per type (mirroring
    //! `proptest::num`), each exposing a full-range `ANY`.

    macro_rules! int_any_module {
        ($($mod_name:ident : $ty:ty),* $(,)?) => {$(
            pub mod $mod_name {
                use crate::{Strategy, TestRng};

                /// Strategy type of [`ANY`].
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Generates uniformly over the type's whole range.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            }
        )*};
    }

    int_any_module! {
        u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
        i8: i8, i16: i16, i32: i32, i64: i64, isize: isize,
    }
}

pub mod prelude {
    //! One-stop import for property tests, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; panics with the message (the
/// generated inputs are reported by the enclosing test failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body for `ProptestConfig::cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_in_bounds() {
        let mut rng = crate::TestRng::for_case("self", 0);
        for _ in 0..1000 {
            let f = crate::Strategy::generate(&(2.0f64..3.0), &mut rng);
            assert!((2.0..3.0).contains(&f));
            let n = crate::Strategy::generate(&(5usize..9), &mut rng);
            assert!((5..9).contains(&n));
        }
        let v = crate::Strategy::generate(&crate::collection::vec(0.0f64..1.0, 3..7), &mut rng);
        assert!((3..7).contains(&v.len()));
        let exact =
            crate::Strategy::generate(&crate::collection::vec(crate::bool::ANY, 10), &mut rng);
        assert_eq!(exact.len(), 10);
    }

    #[test]
    fn deterministic_per_case() {
        let a = crate::Strategy::generate(&(0u64..u64::MAX), &mut crate::TestRng::for_case("t", 3));
        let b = crate::Strategy::generate(&(0u64..u64::MAX), &mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..4, 10.0f64..20.0)
            .prop_map(|(n, x)| vec![x; n])
            .prop_flat_map(|v| (Just(v.len()), 0usize..8));
        let mut rng = crate::TestRng::for_case("combo", 1);
        let (len, extra) = crate::Strategy::generate(&strat, &mut rng);
        assert!((1..4).contains(&len));
        assert!(extra < 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(xs in crate::collection::vec(-1.0f64..1.0, 1..20), flip in crate::bool::ANY) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            // Exercise a bool draw without a tautological expression.
            prop_assert!(u8::from(flip) <= 1);
        }

        #[test]
        fn macro_mut_and_tuple_patterns((a, b) in (0u32..5, 0u32..5), mut acc in 0usize..3) {
            acc += (a + b) as usize;
            prop_assert!(acc < 12);
        }
    }
}
