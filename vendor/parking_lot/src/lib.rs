//! Vendored minimal stand-in for `parking_lot`.
//!
//! Provides a [`Mutex`] with `parking_lot`'s ergonomics — `lock()` returns
//! the guard directly, no poisoning — implemented on top of
//! `std::sync::Mutex`. A poisoned std mutex (a panicking worker thread)
//! simply hands back the inner data, matching `parking_lot` semantics.

use std::fmt;
use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, locking never
/// returns a `Result`: poisoning is ignored, as in the real `parking_lot`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard }
    }

    /// Returns a mutable reference to the inner value (no locking needed:
    /// the exclusive borrow proves unique access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
