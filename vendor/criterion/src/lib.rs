//! Vendored minimal stand-in for `criterion`.
//!
//! Offers the same authoring surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`] — backed by a simple wall-clock
//! harness instead of criterion's statistical machinery:
//!
//! * each benchmark is warmed up briefly, then timed over adaptive batches
//!   until ~`MEASURE_MS` of samples accumulate;
//! * the median per-iteration time is printed as `name ... <time>`;
//! * there are no plots, baselines, or outlier analysis.
//!
//! Benches declare `harness = false` in their manifest exactly as with the
//! real criterion, so swapping the real crate back in later is a
//! manifest-only change.
//!
//! One extension beyond the real criterion's surface: results accumulate
//! in a process-wide registry, and passing `--save-json <path>` to the
//! bench binary (i.e. `cargo bench -- --save-json out.json`) writes them
//! as JSON — `{"results": [{"name", "median_ns", "iters"}, …]}` — which
//! the `bench_baseline` tool turns into the repo's tracked `BENCH_*.json`
//! baselines.

use std::sync::Mutex;
use std::time::{Duration, Instant};

const WARMUP_MS: u64 = 50;
const MEASURE_MS: u64 = 300;

/// One finished benchmark: name, median per-iteration time, sample count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Full benchmark name (`group/name` for grouped benches).
    pub name: String,
    /// Median per-iteration wall time in nanoseconds.
    pub median_ns: u128,
    /// Number of timed iterations behind the median.
    pub iters: usize,
}

/// Every result reported so far in this process, in run order.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Snapshots the results reported so far (used by `--save-json` and tests).
pub fn collected_results() -> Vec<BenchResult> {
    RESULTS.lock().expect("results lock").clone()
}

/// Serializes the collected results to the JSON schema documented on the
/// crate: `{"results": [{"name": …, "median_ns": …, "iters": …}, …]}`.
pub fn results_to_json() -> String {
    let results = collected_results();
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"iters\": {}}}{sep}\n",
            json_escape(&r.name),
            r.median_ns,
            r.iters
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Honors `--save-json <path>` from the process arguments; called by the
/// `criterion_main!`-generated `main` after every group has run. Other
/// harness flags (`--bench` etc.) are ignored as before.
pub fn save_results_from_args() {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--save-json" {
            let path = args
                .next()
                .expect("--save-json requires a file path argument");
            std::fs::write(&path, results_to_json())
                .unwrap_or_else(|e| panic!("failed to write bench results to {path}: {e}"));
            eprintln!("bench results saved to {path}");
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// How `iter_batched` amortizes setup cost. The stub runs one setup per
/// measured iteration regardless of the hint, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; batches may be large.
    SmallInput,
    /// Routine input is large; batches should be small.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_until = Instant::now() + Duration::from_millis(WARMUP_MS);
        while Instant::now() < warmup_until {
            std::hint::black_box(routine());
        }
        let measure_until = Instant::now() + Duration::from_millis(MEASURE_MS);
        while Instant::now() < measure_until {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warmup_until = Instant::now() + Duration::from_millis(WARMUP_MS);
        while Instant::now() < warmup_until {
            std::hint::black_box(routine(setup()));
        }
        let measure_until = Instant::now() + Duration::from_millis(MEASURE_MS);
        while Instant::now() < measure_until {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

fn report(name: &str, bencher: &Bencher) {
    match bencher.median() {
        Some(t) => {
            println!(
                "{name:<40} {:>12} ({} samples)",
                format_duration(t),
                bencher.samples.len()
            );
            RESULTS.lock().expect("results lock").push(BenchResult {
                name: name.to_string(),
                median_ns: t.as_nanos(),
                iters: bencher.samples.len(),
            });
        }
        None => println!("{name:<40} {:>12}", "no samples"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report(name.as_ref(), &bencher);
        self
    }

    /// Opens a named group; benchmarks inside it report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sample count is
    /// time-budgeted rather than fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name.as_ref()), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups (benches set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; the only
            // option this harness honors is `--save-json <path>`, the rest
            // are ignored.
            $( $group(); )+
            $crate::save_results_from_args();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("self/test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new();
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.median().is_some());
    }

    #[test]
    fn group_reports_prefixed() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
        // The registry records the prefixed name (other tests may have
        // added entries concurrently, so check containment, not equality).
        assert!(collected_results().iter().any(|r| r.name == "g/inner"));
    }

    #[test]
    fn results_registry_serializes_to_json() {
        let mut c = Criterion::default();
        c.bench_function("self/json_probe", |b| b.iter(|| 2 + 2));
        let json = results_to_json();
        assert!(json.contains("\"results\""));
        assert!(json.contains("\"name\": \"self/json_probe\""));
        assert!(json.contains("\"median_ns\": "));
        assert!(json.contains("\"iters\": "));
    }
}
